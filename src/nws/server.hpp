// NwsServer: a sharded ForecastService behind the nwscpu wire protocol.
//
// Mirrors the deployment shape of the original NWS: sensor processes PUT
// measurements, schedulers ask for FORECASTs.  The request handling is a
// pure string -> string function (handle_line) so all protocol behaviour is
// unit-testable; the optional TCP front end (start/stop) serves it on a
// loopback-or-LAN socket.
//
// Concurrency model (shard-per-core, dispatcher-per-core):
//  * Service state is partitioned into N shards by FNV-1a hash of the
//    series name (ShardedForecastService).  N defaults to the machine's
//    hardware concurrency and is overridable via ServerConfig::shards or
//    the NWSCPU_SHARDS environment variable.
//  * D dispatcher threads (ServerConfig::dispatchers / NWSCPU_DISPATCHERS,
//    default 1) each run their own event loop — edge-triggered epoll on
//    Linux, a poll() fallback elsewhere (ServerConfig::net_backend or
//    NWSCPU_NET_BACKEND selects; both produce byte-identical behaviour).
//    With D > 1 on Linux the accept load is spread by binding one
//    SO_REUSEPORT listener per dispatcher; elsewhere (or when sharding is
//    disabled) every dispatcher polls one shared listener behind an accept
//    lock.  A connection is pinned to its accepting dispatcher for life,
//    so per-connection slot ordering, pipelining fences and the HELLO BIN
//    upgrade state machine are dispatcher-count-invariant.  Shard workers
//    wake the owning dispatcher through its eventfd (self-pipe under
//    poll), so an idle server parks in the kernel instead of polling on a
//    tick.  A dispatcher only moves bytes: it accepts (batched accept4
//    drains), reads, splits complete requests, routes each to its shard's
//    queue (a cheap verb+series token scan — full parsing happens on the
//    worker), and reaps finished connections.  Responses queue as whole
//    wire images and leave through one vectored writev per flush.
//  * Connections speak the line-oriented text protocol by default; a
//    client may upgrade to length-prefixed binary framing for the hot
//    verbs by sending "HELLO BIN" (see protocol.hpp).  Binary responses
//    carry the exact text response bytes inside a frame, so parity with
//    the text protocol holds by construction.
//  * One worker thread per shard executes requests under that shard's
//    mutex.  Requests for distinct series never contend; requests for the
//    same series always land in the same FIFO queue, so per-series
//    ordering is preserved.  Cross-shard reads (SERIES, global STATS)
//    take every shard lock in index order and fence behind every earlier
//    request pipelined on their connection (read-your-writes), keeping
//    responses byte-identical for any shard count.
//  * Responses are sequenced per connection: each dispatched line gets a
//    slot; a completion sends only the contiguous done-prefix, so
//    pipelined clients always see responses in request order even when
//    shards finish out of order.  Responses are byte-identical for any
//    shard count.
//  * Journal appends group-commit: each shard buffers encoded records and
//    issues one write+flush per journal_group_size records, plus a
//    commit whenever its queue drains (or every journal_flush_ms).
//
// Hardening (this is long-lived grid infrastructure):
//  * per-connection input lines are capped (ERR line too long + drop), so
//    a peer that never sends a newline cannot grow memory without bound;
//  * idle connections can be expired (idle_timeout_ms);
//  * when the series table is full, new series are shed with "ERR busy"
//    instead of growing without bound or dropping silently;
//  * PUTS/PUTB (sequence-tagged PUTs) are idempotent: duplicates from an
//    outbox replay are acked ("OK dup" / counted in the PUTB reply) and
//    not re-applied, even across a restart (a replayed journal makes
//    stale timestamps detectable);
//  * with a journal_path the full service state survives restarts, under
//    any shard count (segmented journals are migrated on reshard);
//  * the socket loop and journal consult util/fault.hpp fault sites, so a
//    chaos harness can inject resets, delays, truncation, garbage and disk
//    failures deterministically (a relaxed atomic load when disabled).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "nws/event_loop.hpp"  // NetBackend, LoopWaker, TxQueue
#include "nws/protocol.hpp"
#include "nws/replication.hpp"
#include "nws/sharded_service.hpp"
#include "obs/metrics.hpp"

namespace nws {

class NwsClient;

namespace obs {
class HttpExporter;
}

/// Replication role at construction.  A follower applies the primary's
/// REPL stream into its standby service and rejects client writes with
/// "ERR not_primary <endpoint>"; PROMOTE (or the failover timer) turns it
/// into a primary at a higher epoch.  See DESIGN.md §11.
enum class ServerRole { kPrimary, kFollower };

struct ServerConfig {
  std::size_t memory_capacity = 8192;  ///< per-series measurement retention
  /// Longest accepted request line (bytes, excluding the newline); longer
  /// input answers "ERR line too long" and drops the connection.
  std::size_t max_line_bytes = 64 * 1024;
  /// Drop connections silent for this long (0 = never).
  int idle_timeout_ms = 0;
  /// Maximum distinct series; PUTs creating more answer "ERR busy"
  /// (0 = unlimited).
  std::size_t max_series = 0;
  /// Journal file making memory + forecaster state durable across
  /// restarts (empty = in-core only).  With more than one shard the
  /// segments live at `journal_path.shard<k>`.
  std::filesystem::path journal_path;
  /// Shard (and worker thread) count.  0 = the NWSCPU_SHARDS environment
  /// variable when set, else std::thread::hardware_concurrency().
  std::size_t shards = 0;
  /// Journal group-commit size: records buffered per shard segment before
  /// one write+flush.  1 restores commit-per-append.
  std::size_t journal_group_size = 64;
  /// With a positive value, an idle shard re-commits its journal at this
  /// period instead of immediately when its queue drains (bounds how long
  /// a buffered record may wait; under load the group size bounds it).
  int journal_flush_ms = 0;
  /// Dispatcher event-loop backend (kAuto = NWSCPU_NET_BACKEND env, else
  /// epoll).  Both backends serve the identical protocol: responses are
  /// byte-identical whichever one is selected.
  NetBackend net_backend = NetBackend::kAuto;
  /// Dispatcher (event-loop) thread count — the byte-moving plane.  Each
  /// dispatcher owns its own event loop, wakeup channel and connection
  /// population; a connection is pinned to its accepting dispatcher, so
  /// responses are byte-identical at any dispatcher count.  0 = the
  /// NWSCPU_DISPATCHERS environment variable when set, else 1.
  std::size_t dispatchers = 0;
  /// listen() backlog.  0 = the NWSCPU_LISTEN_BACKLOG environment variable
  /// when set, else SOMAXCONN.  Accept-queue overflow pressure surfaces
  /// through the nws_server_accept_overflows_total counter (Linux).
  int listen_backlog = 0;
  /// With more than one dispatcher on Linux, shard the accept load by
  /// binding one SO_REUSEPORT listener per dispatcher.  false — or
  /// NWSCPU_REUSEPORT=0 — forces the portable fallback: one shared
  /// listener every dispatcher polls behind an accept lock.
  bool reuseport = true;

  // --- Replication & failover (DESIGN.md §11) ---------------------------
  /// Role at construction (a follower can be promoted at runtime).
  ServerRole role = ServerRole::kPrimary;
  /// Comma-separated follower endpoints a primary streams to: "7002" or
  /// "host:7003" entries.  Empty = the NWSCPU_REPL_FOLLOWERS environment
  /// variable; replication is off when both are empty.
  std::string repl_followers;
  /// Follower auto-failover: promote after this long (ms) without any
  /// replication traffic from the primary.  0 = the NWSCPU_FAILOVER_MS
  /// environment variable; never when both are unset.
  int failover_ms = 0;
  /// Primary: heartbeat period (ms) on an idle replication stream — the
  /// follower's failover timer measures silence against this.
  int repl_heartbeat_ms = 50;
  /// Records per REPL BATCH / RESET chunk (bounds frame size).
  std::size_t repl_batch_max = 512;
  /// Per-shard in-core replication log capacity (records).  A follower
  /// lagging past this window is resynced with a snapshot instead.
  std::size_t repl_log_capacity = 65536;
  /// Synchronous replication: a write is acked to the client only once
  /// every follower acked it (bounded by repl_sync_timeout_ms, after
  /// which the client sees "ERR repl_timeout" and its outbox retries —
  /// with it, an acked write provably survives the primary's death).
  bool repl_sync = false;
  int repl_sync_timeout_ms = 2000;
  /// Back-off hint carried in "ERR busy retry_after_ms=<n>" replies.
  int busy_retry_ms = 100;
  /// Endpoint advertised to followers for the not_primary redirect
  /// ("host:port"); empty = 127.0.0.1:<bound port> once start() binds.
  std::string advertise;

  // --- HTTP observability plane (DESIGN.md §9) --------------------------
  /// Side port for GET /metrics, /healthz, /tracez and /statusz, served by
  /// a dedicated exporter thread off the same EventLoop seam the
  /// dispatchers use.  -1 = the NWSCPU_OBS_PORT environment variable when
  /// set, else disabled; 0 = ephemeral (obs_port() reports the binding).
  int obs_port = -1;
};

class NwsServer {
 public:
  explicit NwsServer(ServerConfig config);
  explicit NwsServer(std::size_t memory_capacity = 8192);
  ~NwsServer();

  NwsServer(const NwsServer&) = delete;
  NwsServer& operator=(const NwsServer&) = delete;

  /// Processes one protocol line and returns the response line (without
  /// trailing newline).  QUIT returns "OK"; connection teardown is the
  /// transport's business.  Thread-safe against a running listener (it
  /// takes the same shard locks the workers do).
  [[nodiscard]] std::string handle_line(std::string_view line);

  /// Starts the TCP listener on 127.0.0.1:`port` (0 = ephemeral).  Returns
  /// the bound port, or 0 on failure.  Idempotent start is an error.
  std::uint16_t start(std::uint16_t port = 0);

  /// Stops the listener, joins the dispatcher and shard workers and
  /// flushes the journal (if any).  Safe to call when not started.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_.load(); }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const ServerConfig& config() const noexcept { return cfg_; }

  /// The resolved event-loop backend (config override, else
  /// NWSCPU_NET_BACKEND, else epoll).
  [[nodiscard]] NetBackend backend() const noexcept { return backend_; }

  /// Bound HTTP observability port (0 when the plane is disabled).
  [[nodiscard]] std::uint16_t obs_port() const noexcept { return obs_port_; }

  /// The METRICS wire body: the global registry's Prometheus exposition
  /// (trailing newline included).  The METRICS verb and the HTTP plane's
  /// GET /metrics both serve exactly this string, so byte parity between
  /// the two transports holds by construction.
  [[nodiscard]] std::string metrics_body() const;

  /// Number of shards (== worker threads while running).
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return service_.shard_count();
  }

  /// Dispatcher threads while running (the resolved config otherwise).
  [[nodiscard]] std::size_t dispatcher_count() const noexcept;
  /// True when the accept load is spread across per-dispatcher
  /// SO_REUSEPORT listeners (false: shared listener + accept lock, the
  /// single-dispatcher / non-Linux / reuseport=false shape).
  [[nodiscard]] bool accept_sharded() const noexcept {
    return !shared_listener_;
  }

  /// Requests served so far (all transports).
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_.load();
  }

  /// Connected clients at this instant (for tests/monitoring).
  [[nodiscard]] std::size_t connections() const noexcept {
    return connections_.load();
  }

  /// Duplicate PUTS requests (and PUTB samples) acked without re-applying.
  [[nodiscard]] std::uint64_t duplicates_acked() const noexcept {
    return duplicates_.load();
  }
  /// Requests shed with "ERR busy".
  [[nodiscard]] std::uint64_t shed_busy() const noexcept {
    return shed_.load();
  }
  /// Connections dropped for oversized lines or idleness.
  [[nodiscard]] std::uint64_t connections_dropped() const noexcept {
    return dropped_.load();
  }

  /// Promotes this server to primary: bumps the epoch past every epoch
  /// ever seen (fencing the old primary), adopts the applied watermarks
  /// as the replication log base and starts streaming to the configured
  /// followers.  Idempotent on a primary.  Returns the (possibly new)
  /// epoch.  Also reachable through the PROMOTE admin verb.
  std::uint64_t promote();

  /// True while this server accepts client writes.
  [[nodiscard]] bool is_primary() const noexcept {
    return is_primary_.load(std::memory_order_acquire);
  }
  /// Current replication epoch (monotonic across promotions).
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }
  /// Promotions performed (0 on a never-promoted server).
  [[nodiscard]] std::uint64_t promotions() const noexcept {
    return promotions_.load();
  }
  /// Client writes rejected with "ERR not_primary".
  [[nodiscard]] std::uint64_t writes_redirected() const noexcept {
    return not_primary_.load();
  }
  /// Replication requests fenced with "ERR stale_epoch".
  [[nodiscard]] std::uint64_t repl_fenced() const noexcept {
    return fenced_.load();
  }
  /// Records committed locally but not yet acked by the slowest follower
  /// (0 without followers).
  [[nodiscard]] std::uint64_t repl_lag() const noexcept;
  /// Last known primary endpoint ("host:port", or "-" when unknown).
  [[nodiscard]] std::string primary_hint() const;

  /// The underlying sharded service (measurements recovered from the
  /// journal, journal write failures, ...).
  [[nodiscard]] const ShardedForecastService& service() const noexcept {
    return service_;
  }

 private:
  /// A response finished out of order, parked until its slot flushes.
  struct Pending {
    std::string text;         ///< response line, no trailing newline
    bool close_after = false;  ///< QUIT / line-too-long: close once sent
    /// Framing fixed at dispatch time: a HELLO BIN upgrade mid-pipeline
    /// must not reframe responses to requests dispatched before it.
    bool binary = false;
  };

  struct Connection {
    int fd = -1;
    /// Owning dispatcher index: fixed at accept, every attention flag and
    /// wakeup for this connection targets that dispatcher's loop.
    std::size_t dispatcher = 0;
    // Dispatcher-owned (never touched by workers):
    std::string rx;  ///< bytes received, not yet split into lines/frames
    std::chrono::steady_clock::time_point last_activity{};
    std::size_t next_slot = 0;   ///< next response slot to assign
    bool stop_dispatch = false;  ///< QUIT/overlong line seen: ignore rest
    bool binary = false;         ///< HELLO BIN negotiated: rx holds frames
    /// Dispatched lines not yet completed (idle expiry must not fire).
    std::atomic<std::size_t> inflight{0};
    // Guarded by mu (workers and dispatcher):
    std::mutex mu;
    std::size_t flush_slot = 0;  ///< next slot to send
    std::map<std::size_t, Pending> pending;  ///< out-of-order completions
    TxQueue tx;                  ///< wire images formatted, not yet written
    bool closing = false;        ///< sent last response; reap me
    bool dead = false;           ///< fd closed / peer gone
    /// Signals flush_slot advances (and teardown) to cross-shard reads
    /// waiting on the read-your-writes barrier.
    std::condition_variable cv;
  };
  using ConnPtr = std::shared_ptr<Connection>;

  struct Task {
    ConnPtr conn;
    std::string line;  ///< text line, or a binary frame payload (op+body)
    std::size_t slot = 0;
    bool binary = false;  ///< frame the response binary
    /// Binary frame carried a trace-context block (kBinTraceFlag); the
    /// worker parses the payload with the 17-byte context prefix.
    bool traced = false;
  };

  struct ShardState {
    std::mutex mu;  ///< guards service_.shard(k), its journal + applied_seq
    /// Highest PUTS/PUTB sequence applied per series (in-core fast path;
    /// the timestamp check covers restarts).
    std::unordered_map<std::string, std::uint64_t> applied_seq;
    /// Primary: in-core tail of this shard's committed records (guarded by
    /// mu; null when replication is disabled).  Indices equal the shard's
    /// total appended count, so a watermark doubles as an applied total.
    std::unique_ptr<ReplLog> repl_log;
    /// Follower: next expected REPL RESET chunk index + whether a snapshot
    /// transfer is in progress (guarded by mu).
    std::uint64_t snap_expect = 0;
    bool snap_active = false;
    std::mutex qmu;
    std::condition_variable qcv;
    std::deque<Task> queue;
    /// Trace context of the last sampled write applied to this shard.
    /// The repl sender piggybacks it onto the next BATCH for the shard so
    /// the follower's apply span joins the client's trace (best-effort:
    /// relaxed, and a batch folding several writes carries the last one).
    std::atomic<std::uint64_t> last_trace_id{0};
    std::atomic<std::uint64_t> last_trace_span{0};
  };

  /// One follower a primary streams to (sender thread + its ack state).
  struct FollowerLink {
    ReplEndpoint endpoint;
    std::thread thread;
    /// Per-shard records acked by this follower (read by the sync-wait
    /// and lag paths without the shard lock).
    std::unique_ptr<std::atomic<std::uint64_t>[]> acked;
  };

  /// One dispatcher thread: its event loop, listener (an SO_REUSEPORT
  /// shard or the shared fd), wakeup channel and attention list.
  struct Dispatcher {
    std::size_t index = 0;
    int listen_fd = -1;  ///< borrowed from listen_fds_ (owner closes)
    LoopWaker waker;
    std::thread thread;
    /// Connections a worker flagged for this dispatcher: pending tx bytes
    /// to watch for writability, or a finished/dead connection to reap.
    std::mutex attention_mu;
    std::vector<ConnPtr> attention;
    // Per-dispatcher telemetry (labelled dispatcher="<index>").
    obs::Counter* accepts = nullptr;
    obs::Gauge* conns_gauge = nullptr;
  };

  void serve_poll(Dispatcher& d);
  void serve_epoll(Dispatcher& d);
  void worker_loop(std::size_t k);
  /// Accepts until EAGAIN on d's listener (batched accept4 drain;
  /// nonblocking + TCP_NODELAY applied, telemetry + accept-queue overflow
  /// counted).  Takes the shared accept lock when listeners are shared.
  std::size_t accept_ready(Dispatcher& d, std::vector<ConnPtr>& out);
  /// Drains conn->fd into conn->rx until EAGAIN; false when the peer is
  /// gone (EOF / error / injected reset) and the connection must drop.
  [[nodiscard]] bool read_ready(const ConnPtr& conn);
  /// Routes buffered input: text lines, or binary frames once negotiated
  /// (a HELLO BIN line flips the framing for the rest of the buffer).
  void dispatch_input(const ConnPtr& conn);
  /// Splits complete lines out of conn->rx and queues them on shards.
  void dispatch_lines(const ConnPtr& conn);
  /// Extracts complete binary frames out of conn->rx and queues them.
  void dispatch_frames(const ConnPtr& conn);
  /// HELLO negotiation (dispatcher-level: framing is transport state).
  /// Returns true when `line` was a HELLO and has been answered.
  bool handle_hello(const ConnPtr& conn, std::string_view line);
  /// Cheap verb+series scan deciding which queue gets the line.  Workers
  /// re-derive the shard from the authoritative parse, so this affects
  /// parallelism only, never correctness.
  [[nodiscard]] std::size_t route_line(std::string_view line) const;
  /// The same cheap scan over a binary frame payload.
  [[nodiscard]] std::size_t route_frame(std::string_view payload) const;
  /// Parses + executes one line, appending the response (no newline).
  /// With a non-null task, cross-shard reads (SERIES, global STATS) wait
  /// until every earlier slot on the connection has flushed, so pipelined
  /// responses are byte-identical for any shard count.
  void process_line(std::string_view line, Request& req, std::string& out,
                    bool& close_after, const Task* task);
  void execute_request(const Request& req, std::string& out);
  /// PUT/PUTS/PUTB under shards_[k]->mu: admission, dedup, apply.
  void handle_put(const Request& req, std::size_t k, std::string& out);
  /// Delivers a finished response into its slot and sends the contiguous
  /// done-prefix (respond-fault site; flags the dispatcher when the
  /// connection needs reaping or write-readiness watching).
  void complete(const ConnPtr& conn, std::size_t slot, std::string&& text,
                bool close_after, bool binary);
  /// Vector-flushes as much of conn->tx as the socket takes (caller holds
  /// no lock).  Returns true when tx drained; marks the connection dead on
  /// hard errors.
  bool flush_tx(const ConnPtr& conn);
  /// The same flush with conn->mu already held by the caller.
  bool flush_tx_locked(Connection& conn);
  /// Flags `conn` for its owning dispatcher (reap, or arm write interest)
  /// and wakes that dispatcher's loop.
  void request_attention(const ConnPtr& conn);
  /// Group-commits shard k's buffered journal records.
  void commit_shard(std::size_t k);
  /// Closes + marks dead, releases fenced readers, updates gauges.
  void teardown(const ConnPtr& conn);
  /// Event-wait timeout honouring idle expiry; -1 = block indefinitely.
  [[nodiscard]] int wait_timeout_ms() const noexcept;

  /// /healthz body; `ok` reports whether the role/lag/queue checks passed
  /// (the HTTP plane maps it to 200 vs 503).
  [[nodiscard]] std::string healthz_body(bool& ok) const;
  /// /statusz body: build info, resolved knobs, dispatcher/shard shape.
  [[nodiscard]] std::string statusz_body() const;

  // --- Replication (DESIGN.md §11) --------------------------------------
  void execute_repl_hello(const Request& req, std::string& out);
  /// Shared BATCH/RESET admission: epoch fencing + shard bounds.  False
  /// after appending the error reply.
  [[nodiscard]] bool repl_gate(const Request& req, std::string& out);
  void execute_repl_batch(const Request& req, std::string& out);
  void execute_repl_reset(const Request& req, std::string& out);
  /// Streams to one follower until stop or demotion: connect, HELLO,
  /// per-shard snapshot/resume, then batches + heartbeats.
  void repl_sender_loop(std::size_t link);
  /// One connected session; false = disconnect and retry with backoff.
  bool repl_sender_session(std::size_t link, NwsClient& client);
  /// Transfers shard k as chunked REPL RESET frames; advances the
  /// follower's position/acks to the shard's log end on success.
  bool repl_send_snapshot(std::size_t link, std::size_t k, NwsClient& client,
                          std::uint64_t& pos);
  /// Follower auto-failover: promote after failover_ms of stream silence.
  void failover_monitor_loop();
  void start_replication();
  void stop_replication();
  /// Steps aside after observing a higher epoch: stops accepting writes
  /// (the epoch is adopted so our own stale stream fences itself).
  void demote(std::uint64_t seen_epoch);
  /// repl_sync: waits until every follower acked shard k through
  /// `target`; false on timeout (the client retries via its outbox).
  [[nodiscard]] bool wait_repl_acked(std::size_t k, std::uint64_t target);
  /// Stamps the failover timer on any replication traffic.
  void note_repl_activity() noexcept;
  /// Persists the follower's {epoch, synced, watermarks} cursor (no-op
  /// without a journal path).
  void save_meta();
  [[nodiscard]] std::string advertised_endpoint() const;

  ServerConfig cfg_;
  ShardedForecastService service_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  /// Per-shard queue-depth gauges (nws_shard_queue_depth{shard="k"}),
  /// registered once at construction and updated on enqueue/dequeue.
  std::vector<obs::Gauge*> shard_queue_depth_;
  /// Distinct series across all shards (max_series admission without
  /// taking every shard lock on the PUT path).
  std::atomic<std::size_t> total_series_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::size_t> connections_{0};
  std::atomic<std::uint64_t> duplicates_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> dropped_{0};

  std::atomic<bool> running_{false};
  std::atomic<bool> workers_stop_{false};
  /// Owned listener sockets: one per dispatcher under SO_REUSEPORT
  /// sharding, exactly one otherwise (each Dispatcher::listen_fd borrows
  /// its entry).
  std::vector<int> listen_fds_;
  /// One shared listener (accepts serialized by accept_mu_) instead of
  /// per-dispatcher SO_REUSEPORT shards.
  bool shared_listener_ = true;
  std::mutex accept_mu_;
  int listen_backlog_ = 0;  ///< resolved at start()
  NetBackend backend_ = NetBackend::kEpoll;
  std::uint16_t port_ = 0;
  std::vector<std::unique_ptr<Dispatcher>> dispatchers_;
  std::vector<std::thread> workers_;
  /// HTTP observability plane (null while stopped / disabled).
  std::unique_ptr<obs::HttpExporter> exporter_;
  std::uint16_t obs_port_ = 0;

  // --- Replication state (DESIGN.md §11) --------------------------------
  std::atomic<bool> is_primary_{true};
  std::atomic<std::uint64_t> epoch_{1};
  /// Highest epoch ever observed in replication traffic (promote bumps
  /// past it, so a promoted epoch always fences every stream ever seen).
  std::atomic<std::uint64_t> max_seen_epoch_{0};
  std::atomic<std::uint64_t> promotions_{0};
  std::atomic<std::uint64_t> fenced_{0};
  std::atomic<std::uint64_t> not_primary_{0};
  /// Per-shard committed/applied record totals (the watermark), mirrored
  /// for lock-free lag and sync-wait reads; canonical under the shard mu.
  std::unique_ptr<std::atomic<std::uint64_t>[]> repl_end_;
  /// Per-shard epoch the shard last synced under (follower side; a
  /// primary's shards are synced under its own epoch by definition).
  std::unique_ptr<std::atomic<std::uint64_t>[]> shard_synced_;
  bool repl_enabled_ = false;  ///< log appends + REPL machinery on
  std::vector<ReplEndpoint> follower_endpoints_;
  std::vector<std::unique_ptr<FollowerLink>> links_;
  std::atomic<bool> repl_stop_{false};
  /// Serialises promote / start_replication / stop_replication against
  /// each other (a failover-timer promote can race stop()).
  std::mutex repl_admin_mu_;
  /// Wakes senders on new commits (repl_gen_) and sync-waiters on acks;
  /// also guards links_ mutation (mutable: repl_lag() is const).
  mutable std::mutex repl_mu_;
  std::condition_variable repl_cv_;
  std::condition_variable ack_cv_;
  std::uint64_t repl_gen_ = 0;
  /// steady_clock ms of the last REPL request seen (failover timer).
  std::atomic<std::int64_t> last_repl_ms_{0};
  std::thread failover_thread_;
  mutable std::mutex hint_mu_;
  std::string primary_hint_;  ///< last known primary ("" = unknown)
  std::filesystem::path meta_path_;  ///< follower cursor file ("" = none)
};

}  // namespace nws

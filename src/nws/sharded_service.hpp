// ShardedForecastService: N independent ForecastService shards keyed by
// series-name hash — the scale-out core of the NWS memory/forecaster.
//
// A deployed NWS memory serves one measurement stream per monitored
// resource; streams for different series never interact, so the service
// state partitions cleanly.  Each shard owns its own Memory, forecasters
// and journal segment, which lets the server put one mutex (and one
// worker thread) per shard: PUT/FORECAST traffic for distinct series
// never contends.  Routing is FNV-1a over the series name — stable across
// processes and platforms, so a series always lands in the same segment
// for a fixed shard count.
//
// Journal layout:
//   * 1 shard:   the single file at `journal_base` (the legacy layout,
//     byte-compatible with pre-sharding journals);
//   * N shards:  `journal_base.shard<k>` for k in 0..N-1.
// Construction replays EVERY segment found (plus a legacy unsuffixed
// file), routing each record by the current hash — so a journal written
// under a different shard count is recovered losslessly.  When any record
// was found outside its current segment (shard count changed), every
// segment is rewritten from the recovered memory and stale files are
// removed: one restart migrates the layout.  Torn/corrupt lines are
// skipped and counted exactly as the single Journal does.
//
// This class does no locking — the server guards shard(k) with its
// per-shard mutex and takes all locks (in index order) for the rare
// cross-shard reads (SERIES, STATS, sync).
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string_view>
#include <vector>

#include "nws/forecast_service.hpp"

namespace nws {

class ShardedForecastService {
 public:
  /// `shards` >= 1; `memory_capacity` bounds each series' retention (the
  /// bound is per series, so it is shard-count independent); `factory`
  /// builds per-series forecasters; a non-empty `journal_base` makes the
  /// service durable under the segmented layout above.
  ShardedForecastService(std::size_t shards, std::size_t memory_capacity,
                         ForecastService::ForecasterFactory factory,
                         std::filesystem::path journal_base);

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  /// Shard owning `series` (FNV-1a hash modulo shard_count()).
  [[nodiscard]] std::size_t shard_of(std::string_view series) const noexcept;

  /// Per-shard state; the caller holds that shard's lock.
  [[nodiscard]] ForecastService& shard(std::size_t k) { return *shards_[k]; }
  [[nodiscard]] const ForecastService& shard(std::size_t k) const {
    return *shards_[k];
  }

  // Cross-shard reads (caller holds every shard lock).
  [[nodiscard]] std::vector<std::string> series_names() const;
  [[nodiscard]] Memory::Totals totals() const;
  [[nodiscard]] std::size_t series_count() const;

  /// Measurements recovered across all segments at construction.
  [[nodiscard]] std::size_t recovered() const noexcept { return recovered_; }
  /// Torn/corrupt/out-of-order records skipped during replay.
  [[nodiscard]] std::size_t replay_skipped() const noexcept {
    return replay_skipped_;
  }
  /// Journal appends lost to write failures, summed over segments.
  [[nodiscard]] std::size_t write_failures() const;

  /// Group-commit size applied to every segment journal.
  void set_group_size(std::size_t records);
  /// Commits shard k's buffered journal appends (caller holds its lock).
  void commit(std::size_t k);
  /// Commits and flushes every segment (caller holds every lock).
  void sync();

  [[nodiscard]] static std::uint64_t hash_series(
      std::string_view series) noexcept;

 private:
  [[nodiscard]] std::filesystem::path segment_path(std::size_t k) const;
  void replay_segments();

  std::vector<std::unique_ptr<ForecastService>> shards_;
  std::filesystem::path journal_base_;
  std::size_t recovered_ = 0;
  std::size_t replay_skipped_ = 0;
};

}  // namespace nws

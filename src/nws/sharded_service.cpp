#include "nws/sharded_service.hpp"

#include <algorithm>
#include <charconv>
#include <system_error>
#include <utility>

#include "nws/hash_ring.hpp"

namespace nws {

namespace fs = std::filesystem;

std::uint64_t ShardedForecastService::hash_series(
    std::string_view series) noexcept {
  // FNV-1a, 64-bit: stable across processes and platforms, so journal
  // segment assignment survives restarts and machine moves.  The same
  // hash drives the router tier's consistent-hash ring (hash_ring.hpp).
  return fnv1a64(series);
}

std::size_t ShardedForecastService::shard_of(
    std::string_view series) const noexcept {
  return static_cast<std::size_t>(hash_series(series) % shards_.size());
}

fs::path ShardedForecastService::segment_path(std::size_t k) const {
  if (shards_.size() == 1) return journal_base_;
  return fs::path(journal_base_.string() + ".shard" + std::to_string(k));
}

ShardedForecastService::ShardedForecastService(
    std::size_t shards, std::size_t memory_capacity,
    ForecastService::ForecasterFactory factory, fs::path journal_base)
    : journal_base_(std::move(journal_base)) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t k = 0; k < shards; ++k) {
    shards_.push_back(
        std::make_unique<ForecastService>(memory_capacity, factory));
  }
  if (!journal_base_.empty()) replay_segments();
}

void ShardedForecastService::replay_segments() {
  // Collect every journal file a previous incarnation (under any shard
  // count) may have left: the unsuffixed legacy/base file plus all
  // `<base>.shard<j>` segments.  Replay the base first, then segments in
  // index order, routing each record by the *current* hash.
  struct Segment {
    std::size_t index;  ///< SIZE_MAX for the unsuffixed base file
    fs::path path;
  };
  std::vector<Segment> found;
  std::error_code ec;
  if (fs::exists(journal_base_, ec)) {
    found.push_back({static_cast<std::size_t>(-1), journal_base_});
  }
  const fs::path parent =
      journal_base_.has_parent_path() ? journal_base_.parent_path() : ".";
  const std::string prefix = journal_base_.filename().string() + ".shard";
  if (fs::exists(parent, ec)) {
    for (const auto& entry : fs::directory_iterator(parent, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind(prefix, 0) != 0) continue;
      const std::string_view digits = std::string_view(name).substr(
          prefix.size());
      std::size_t index = 0;
      const auto [ptr, parse_ec] =
          std::from_chars(digits.data(), digits.data() + digits.size(), index);
      if (parse_ec != std::errc{} || ptr != digits.data() + digits.size()) {
        continue;  // ".shard3.compact" leftovers and the like
      }
      found.push_back({index, entry.path()});
    }
  }
  std::sort(found.begin(), found.end(), [](const Segment& a, const Segment& b) {
    // Base (SIZE_MAX wrapped to front explicitly) first, then by index.
    const bool a_base = a.index == static_cast<std::size_t>(-1);
    const bool b_base = b.index == static_cast<std::size_t>(-1);
    if (a_base != b_base) return a_base;
    return a.index < b.index;
  });

  // A file is "stale" when it is not one of the current layout's segment
  // paths; a record is "misrouted" when the file it sits in is not its
  // current segment.  Either one means the shard count changed and the
  // layout must be rewritten.
  const auto is_current_segment = [&](const fs::path& path) {
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      if (path == segment_path(k)) return true;
    }
    return false;
  };
  bool migrate = false;
  for (const Segment& seg : found) {
    if (!is_current_segment(seg.path)) migrate = true;
    Journal journal(seg.path);
    const Journal::ReplayStats stats =
        journal.replay([&](const std::string& series, Measurement m) {
          const std::size_t target = shard_of(series);
          if (seg.path != segment_path(target)) migrate = true;
          return shards_[target]->restore(series, m);
        });
    recovered_ += stats.recovered;
    replay_skipped_ += stats.skipped;
  }

  for (std::size_t k = 0; k < shards_.size(); ++k) {
    shards_[k]->attach_journal(segment_path(k));
  }
  if (migrate) {
    // One restart migrates the layout: every segment is rewritten from
    // the recovered memory (records beyond each series' retention bound
    // are compacted away, as rewrite always does), then files that are
    // not part of the current layout are removed.
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      shards_[k]->rewrite_journal();
    }
    for (const Segment& seg : found) {
      bool current = false;
      for (std::size_t k = 0; k < shards_.size(); ++k) {
        if (seg.path == segment_path(k)) current = true;
      }
      std::error_code remove_ec;
      if (!current) fs::remove(seg.path, remove_ec);
    }
  }
}

std::vector<std::string> ShardedForecastService::series_names() const {
  std::vector<std::string> names;
  for (const auto& shard : shards_) {
    const auto shard_names = shard->memory().series_names();
    names.insert(names.end(), shard_names.begin(), shard_names.end());
  }
  std::sort(names.begin(), names.end());
  return names;
}

Memory::Totals ShardedForecastService::totals() const {
  Memory::Totals t;
  for (const auto& shard : shards_) {
    const Memory::Totals st = shard->memory().totals();
    t.retained += st.retained;
    t.appended += st.appended;
    t.dropped += st.dropped;
  }
  return t;
}

std::size_t ShardedForecastService::series_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard->series_count();
  return n;
}

std::size_t ShardedForecastService::write_failures() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    if (const Journal* journal =
            const_cast<ForecastService&>(*shard).journal()) {
      n += journal->write_failures();
    }
  }
  return n;
}

void ShardedForecastService::set_group_size(std::size_t records) {
  for (const auto& shard : shards_) {
    if (Journal* journal = shard->journal()) journal->set_group_size(records);
  }
}

void ShardedForecastService::commit(std::size_t k) {
  if (Journal* journal = shards_[k]->journal()) (void)journal->commit();
}

void ShardedForecastService::sync() {
  for (const auto& shard : shards_) shard->sync();
}

}  // namespace nws

#include "nws/event_loop.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cassert>
#include <cerrno>
#include <cstdlib>
#include <string_view>

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#endif

#include "obs/metrics.hpp"

namespace nws {

namespace {

NetBackend resolve_loop_backend(NetBackend requested) {
  if (requested == NetBackend::kAuto) {
    if (const char* env = std::getenv("NWSCPU_NET_BACKEND")) {
      const std::string_view v(env);
      if (v == "poll") requested = NetBackend::kPoll;
      if (v == "epoll") requested = NetBackend::kEpoll;
    }
  }
#ifdef __linux__
  return requested == NetBackend::kPoll ? NetBackend::kPoll
                                        : NetBackend::kEpoll;
#else
  (void)requested;
  return NetBackend::kPoll;
#endif
}

bool make_nonblocking(int fd) noexcept {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Vectored-write telemetry shared by every dispatcher (server + router):
/// calls/bytes/buffers expose the syscall coalescing the TxQueue buys.
struct NetMetrics {
  obs::Counter* writev_calls;
  obs::Counter* writev_bytes;
  obs::Counter* writev_buffers;
};

NetMetrics& net_metrics() {
  static NetMetrics* m = [] {
    auto* nm = new NetMetrics;
    auto& r = obs::registry();
    nm->writev_calls = &r.counter("nws_net_writev_calls_total",
                                  "Vectored sendmsg flushes issued");
    nm->writev_bytes = &r.counter("nws_net_writev_bytes_total",
                                  "Bytes written through vectored flushes");
    nm->writev_buffers =
        &r.counter("nws_net_writev_buffers_total",
                   "Wire images coalesced into vectored flushes");
    return nm;
  }();
  return *m;
}

}  // namespace

EventLoop::EventLoop(NetBackend backend)
    : backend_(resolve_loop_backend(backend)) {
#ifdef __linux__
  if (backend_ == NetBackend::kEpoll) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) backend_ = NetBackend::kPoll;  // degraded, still works
  }
#endif
}

EventLoop::~EventLoop() {
#ifdef __linux__
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
#endif
}

EventLoop::Entry* EventLoop::entry_for(int fd) noexcept {
  if (fd < 0) return nullptr;
  const auto idx = static_cast<std::size_t>(fd);
  if (idx >= entries_.size()) entries_.resize(idx + 1);
  return &entries_[idx];
}

void EventLoop::add(int fd, std::uint64_t tag, bool want_write) {
  Entry* e = entry_for(fd);
  assert(e != nullptr && !e->live);
  e->tag = tag;
  e->want_write = want_write;
  e->live = true;
  ++live_;
#ifdef __linux__
  if (backend_ == NetBackend::kEpoll) {
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
#endif
}

void EventLoop::update(int fd, std::uint64_t tag, bool want_write) {
  Entry* e = entry_for(fd);
  assert(e != nullptr && e->live);
  if (e->tag == tag && e->want_write == want_write) return;
  e->tag = tag;
  e->want_write = want_write;
#ifdef __linux__
  if (backend_ == NetBackend::kEpoll) {
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  }
#endif
}

void EventLoop::remove(int fd) {
  Entry* e = entry_for(fd);
  if (e == nullptr || !e->live) return;
  e->live = false;
  --live_;
#ifdef __linux__
  if (backend_ == NetBackend::kEpoll) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
}

std::size_t EventLoop::wait(std::vector<LoopEvent>& out, int timeout_ms) {
  out.clear();
#ifdef __linux__
  if (backend_ == NetBackend::kEpoll) {
    epoll_event ready[128];
    int n;
    do {
      n = ::epoll_wait(epoll_fd_, ready, 128, timeout_ms);
    } while (n < 0 && errno == EINTR);
    for (int i = 0; i < std::max(n, 0); ++i) {
      const int fd = ready[i].data.fd;
      const Entry* e = entry_for(fd);
      if (e == nullptr || !e->live) continue;  // raced with remove()
      LoopEvent ev;
      ev.fd = fd;
      ev.tag = e->tag;
      ev.readable = (ready[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      ev.writable = (ready[i].events & EPOLLOUT) != 0;
      ev.error = (ready[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(ev);
    }
    return out.size();
  }
#endif
  // poll() fallback: rebuild the pollfd set from the registry each call
  // (O(fds), the price of portability — the epoll path is the default).
  std::vector<pollfd> fds;
  fds.reserve(live_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i].live) continue;
    pollfd p{};
    p.fd = static_cast<int>(i);
    p.events = POLLIN | (entries_[i].want_write ? POLLOUT : 0);
    fds.push_back(p);
  }
  int n;
  do {
    n = ::poll(fds.data(), fds.size(), timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return 0;
  for (const pollfd& p : fds) {
    if (p.revents == 0) continue;
    const Entry* e = entry_for(p.fd);
    if (e == nullptr || !e->live) continue;
    LoopEvent ev;
    ev.fd = p.fd;
    ev.tag = e->tag;
    ev.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
    ev.writable = (p.revents & POLLOUT) != 0;
    ev.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    out.push_back(ev);
  }
  return out.size();
}

// ---------------------------------------------------------------------------
// LoopWaker

bool LoopWaker::open() {
  if (rx_ >= 0) return true;
#ifdef __linux__
  const int efd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (efd >= 0) {
    rx_ = tx_ = efd;
    return true;
  }
#endif
  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) return false;
  if (!make_nonblocking(pipe_fds[0]) || !make_nonblocking(pipe_fds[1])) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return false;
  }
  rx_ = pipe_fds[0];
  tx_ = pipe_fds[1];
  return true;
}

void LoopWaker::close_fds() noexcept {
  if (rx_ >= 0) ::close(rx_);
  if (tx_ >= 0 && tx_ != rx_) ::close(tx_);
  rx_ = tx_ = -1;
}

void LoopWaker::wake() const noexcept {
  if (tx_ < 0) return;
  if (tx_ == rx_) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t w = ::write(tx_, &one, sizeof one);
  } else {
    const char b = 1;
    [[maybe_unused]] const ssize_t w = ::write(tx_, &b, 1);
  }
}

void LoopWaker::drain() const noexcept {
  if (rx_ < 0) return;
  if (tx_ == rx_) {
    std::uint64_t n = 0;
    [[maybe_unused]] const ssize_t r = ::read(rx_, &n, sizeof n);
  } else {
    char buf[256];
    while (::read(rx_, buf, sizeof buf) > 0) {
    }
  }
}

// ---------------------------------------------------------------------------
// TxQueue

void TxQueue::push(std::string&& wire) {
  if (wire.empty()) return;
  bytes_ += wire.size();
  bufs_.push_back(std::move(wire));
}

void TxQueue::clear() noexcept {
  bufs_.clear();
  front_off_ = 0;
  bytes_ = 0;
}

void TxQueue::consume(std::size_t n) noexcept {
  bytes_ -= n;
  while (n != 0) {
    std::string& front = bufs_.front();
    const std::size_t avail = front.size() - front_off_;
    if (n < avail) {
      front_off_ += n;
      return;
    }
    n -= avail;
    bufs_.pop_front();
    front_off_ = 0;
  }
}

TxQueue::FlushStatus TxQueue::flush(int fd) {
  NetMetrics& m = net_metrics();
  while (bytes_ != 0) {
    std::array<iovec, kMaxIov> iov;
    std::size_t niov = 0;
    std::size_t off = front_off_;
    for (const std::string& b : bufs_) {
      if (niov == iov.size()) break;
      // sendmsg never writes through msg_iov; const_cast bridges iovec's
      // non-const API.
      iov[niov].iov_base = const_cast<char*>(b.data()) + off;
      iov[niov].iov_len = b.size() - off;
      off = 0;
      ++niov;
    }
    msghdr msg{};
    msg.msg_iov = iov.data();
    msg.msg_iovlen = static_cast<decltype(msg.msg_iovlen)>(niov);
    const ssize_t w = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return FlushStatus::kBlocked;
      return FlushStatus::kClosed;
    }
    m.writev_calls->inc();
    m.writev_bytes->inc(static_cast<std::uint64_t>(w));
    m.writev_buffers->inc(niov);
    consume(static_cast<std::size_t>(w));
  }
  return FlushStatus::kDrained;
}

}  // namespace nws

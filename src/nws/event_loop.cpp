#include "nws/event_loop.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdlib>
#include <string_view>

#ifdef __linux__
#include <sys/epoll.h>
#endif

namespace nws {

namespace {

NetBackend resolve_loop_backend(NetBackend requested) {
  if (requested == NetBackend::kAuto) {
    if (const char* env = std::getenv("NWSCPU_NET_BACKEND")) {
      const std::string_view v(env);
      if (v == "poll") requested = NetBackend::kPoll;
      if (v == "epoll") requested = NetBackend::kEpoll;
    }
  }
#ifdef __linux__
  return requested == NetBackend::kPoll ? NetBackend::kPoll
                                        : NetBackend::kEpoll;
#else
  (void)requested;
  return NetBackend::kPoll;
#endif
}

}  // namespace

EventLoop::EventLoop(NetBackend backend)
    : backend_(resolve_loop_backend(backend)) {
#ifdef __linux__
  if (backend_ == NetBackend::kEpoll) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) backend_ = NetBackend::kPoll;  // degraded, still works
  }
#endif
}

EventLoop::~EventLoop() {
#ifdef __linux__
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
#endif
}

EventLoop::Entry* EventLoop::entry_for(int fd) noexcept {
  if (fd < 0) return nullptr;
  const auto idx = static_cast<std::size_t>(fd);
  if (idx >= entries_.size()) entries_.resize(idx + 1);
  return &entries_[idx];
}

void EventLoop::add(int fd, std::uint64_t tag, bool want_write) {
  Entry* e = entry_for(fd);
  assert(e != nullptr && !e->live);
  e->tag = tag;
  e->want_write = want_write;
  e->live = true;
  ++live_;
#ifdef __linux__
  if (backend_ == NetBackend::kEpoll) {
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
#endif
}

void EventLoop::update(int fd, std::uint64_t tag, bool want_write) {
  Entry* e = entry_for(fd);
  assert(e != nullptr && e->live);
  if (e->tag == tag && e->want_write == want_write) return;
  e->tag = tag;
  e->want_write = want_write;
#ifdef __linux__
  if (backend_ == NetBackend::kEpoll) {
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  }
#endif
}

void EventLoop::remove(int fd) {
  Entry* e = entry_for(fd);
  if (e == nullptr || !e->live) return;
  e->live = false;
  --live_;
#ifdef __linux__
  if (backend_ == NetBackend::kEpoll) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
}

std::size_t EventLoop::wait(std::vector<LoopEvent>& out, int timeout_ms) {
  out.clear();
#ifdef __linux__
  if (backend_ == NetBackend::kEpoll) {
    epoll_event ready[128];
    int n;
    do {
      n = ::epoll_wait(epoll_fd_, ready, 128, timeout_ms);
    } while (n < 0 && errno == EINTR);
    for (int i = 0; i < std::max(n, 0); ++i) {
      const int fd = ready[i].data.fd;
      const Entry* e = entry_for(fd);
      if (e == nullptr || !e->live) continue;  // raced with remove()
      LoopEvent ev;
      ev.fd = fd;
      ev.tag = e->tag;
      ev.readable = (ready[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      ev.writable = (ready[i].events & EPOLLOUT) != 0;
      ev.error = (ready[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(ev);
    }
    return out.size();
  }
#endif
  // poll() fallback: rebuild the pollfd set from the registry each call
  // (O(fds), the price of portability — the epoll path is the default).
  std::vector<pollfd> fds;
  fds.reserve(live_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i].live) continue;
    pollfd p{};
    p.fd = static_cast<int>(i);
    p.events = POLLIN | (entries_[i].want_write ? POLLOUT : 0);
    fds.push_back(p);
  }
  int n;
  do {
    n = ::poll(fds.data(), fds.size(), timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return 0;
  for (const pollfd& p : fds) {
    if (p.revents == 0) continue;
    const Entry* e = entry_for(p.fd);
    if (e == nullptr || !e->live) continue;
    LoopEvent ev;
    ev.fd = p.fd;
    ev.tag = e->tag;
    ev.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
    ev.writable = (p.revents & POLLOUT) != 0;
    ev.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    out.push_back(ev);
  }
  return out.size();
}

}  // namespace nws

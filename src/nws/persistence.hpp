// Disk-backed measurement journal: the NWS "persistent state" component.
//
// A deployed NWS memory survives restarts by journalling measurements to
// disk.  The low-level Journal is an append-only text file (one "series
// time value" record per line) with crash-tolerant replay (torn tails and
// mid-file garbage are skipped and counted), rewrite-based compaction, and
// a disk-write fault-injection hook (util/fault.hpp) so write failures are
// testable.  A failed append is counted, the stream is reopened once, and
// the in-core state stays authoritative — a sensor never loses its memory
// because the disk hiccuped.
//
// Group commit: append() encodes into an in-core buffer; the buffer is
// written to the stream (one write, then flushed to the OS) when
// group_size() records are pending, on commit(), on sync(), and in the
// destructor.  The service layer commits once per dispatch batch — one
// journal write carries many PUTs — and a configurable interval bounds
// the data-loss window instead of one write() per measurement.
//
// PersistentMemory wraps the in-core Memory with a Journal and restores all
// series from it on open; ForecastService can also own a Journal directly
// so a full server (memory + forecasters) survives a restart.
#pragma once

#include <filesystem>
#include <fstream>
#include <functional>
#include <string>

#include "nws/memory.hpp"

namespace nws {

class Journal {
 public:
  /// Binds the journal to `path` without touching the file.  Call replay()
  /// and then open_for_append() (or just open_for_append() for a
  /// write-only journal).
  explicit Journal(std::filesystem::path path);
  /// Commits any buffered appends before the stream closes.
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  struct ReplayStats {
    std::size_t recovered = 0;  ///< records accepted by `apply`
    std::size_t skipped = 0;    ///< malformed/torn lines or rejected records
  };

  /// Streams every record of an existing journal through `apply`
  /// (series, measurement); a false return (e.g. out-of-order after
  /// mid-file garbage) counts the record as skipped.  Missing file: fresh
  /// store, zero stats.
  ReplayStats replay(
      const std::function<bool(const std::string&, Measurement)>& apply);

  /// Opens the file for appending.  Throws std::runtime_error on failure.
  void open_for_append();

  /// Appends one record to the commit buffer (group commit: the buffer is
  /// written out once group_size() records are pending, or on commit() /
  /// sync()).  Returns false when the append failed (injected fault, or a
  /// real stream failure surfaced by the commit this append triggered);
  /// the failure is counted.
  bool append(const std::string& series, Measurement m);

  /// Writes all buffered records to the stream in one write and flushes
  /// the stream to the OS.  Returns false (counting one failure per lost
  /// record, stream reopened) when the write failed.  No-op when nothing
  /// is pending.
  bool commit();

  /// Records buffered per automatic commit (>= 1; 1 = commit per append,
  /// the pre-group-commit behaviour).
  void set_group_size(std::size_t records);
  [[nodiscard]] std::size_t group_size() const noexcept {
    return group_size_;
  }
  /// Appends buffered but not yet committed.
  [[nodiscard]] std::size_t pending() const noexcept { return pending_; }

  /// Commits buffered appends and flushes the stream to the OS.
  void sync();

  /// Rewrites the journal to hold exactly what `memory` retains (bounds
  /// journal growth, drops any corrupt lines).  Throws on I/O failure;
  /// reopens for append on success.
  void rewrite(const Memory& memory);

  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }
  /// Appends lost to write failures so far (operators should alarm on
  /// growth).
  [[nodiscard]] std::size_t write_failures() const noexcept {
    return write_failures_;
  }

 private:
  static void encode(std::string& out, const std::string& series,
                     Measurement m);

  std::filesystem::path path_;
  std::ofstream out_;
  std::string buffer_;          ///< encoded records awaiting commit
  std::size_t pending_ = 0;     ///< records in buffer_
  std::size_t group_size_ = 1;  ///< records per automatic commit
  std::size_t write_failures_ = 0;
};

class PersistentMemory {
 public:
  /// Opens (creating if needed) the journal at `path` and replays it into
  /// the in-core memory.  Throws std::runtime_error when the journal
  /// exists but cannot be opened for writing.
  explicit PersistentMemory(std::filesystem::path path,
                            std::size_t series_capacity = 8192);

  /// Records and journals a measurement.  Returns false (and journals
  /// nothing) on out-of-order insertion.  A journal write failure is
  /// tolerated (in-core state keeps the sample) and visible through
  /// write_failures().
  bool record(const std::string& series, Measurement m);

  /// Flushes the journal to the OS.
  void sync();

  /// Rewrites the journal so it holds exactly the measurements currently
  /// retained (bounds journal growth for long-lived sensors, repairs
  /// corruption).  Throws on I/O failure.
  void compact();

  [[nodiscard]] const Memory& memory() const noexcept { return memory_; }
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return journal_.path();
  }
  /// Records replayed from an existing journal at construction.
  [[nodiscard]] std::size_t recovered() const noexcept { return recovered_; }
  /// Malformed / torn lines skipped during recovery.
  [[nodiscard]] std::size_t skipped() const noexcept { return skipped_; }
  /// Journal appends lost to write failures.
  [[nodiscard]] std::size_t write_failures() const noexcept {
    return journal_.write_failures();
  }

 private:
  Memory memory_;
  Journal journal_;
  std::size_t recovered_ = 0;
  std::size_t skipped_ = 0;
};

}  // namespace nws

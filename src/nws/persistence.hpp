// Disk-backed measurement journal: the NWS "persistent state" component.
//
// A deployed NWS memory survives restarts by journalling measurements to
// disk.  PersistentMemory wraps the in-core Memory with an append-only
// text journal (one "series time value" record per line) and restores all
// series from it on open.  The journal is human-readable, crash-tolerant
// (a torn final line is skipped on recovery) and compactable (rewrites the
// journal keeping only what the bounded stores retain).
#pragma once

#include <filesystem>
#include <fstream>
#include <string>

#include "nws/memory.hpp"

namespace nws {

class PersistentMemory {
 public:
  /// Opens (creating if needed) the journal at `path` and replays it into
  /// the in-core memory.  Throws std::runtime_error when the journal
  /// exists but cannot be opened for writing.
  explicit PersistentMemory(std::filesystem::path path,
                            std::size_t series_capacity = 8192);

  /// Records and journals a measurement.  Returns false (and journals
  /// nothing) on out-of-order insertion.
  bool record(const std::string& series, Measurement m);

  /// Flushes the journal to the OS.
  void sync();

  /// Rewrites the journal so it holds exactly the measurements currently
  /// retained (bounds journal growth for long-lived sensors).  Throws on
  /// I/O failure.
  void compact();

  [[nodiscard]] const Memory& memory() const noexcept { return memory_; }
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }
  /// Records replayed from an existing journal at construction.
  [[nodiscard]] std::size_t recovered() const noexcept { return recovered_; }
  /// Malformed / torn lines skipped during recovery.
  [[nodiscard]] std::size_t skipped() const noexcept { return skipped_; }

 private:
  void replay();
  void open_for_append();
  static std::string encode(const std::string& series, Measurement m);

  std::filesystem::path path_;
  Memory memory_;
  std::ofstream journal_;
  std::size_t recovered_ = 0;
  std::size_t skipped_ = 0;
};

}  // namespace nws

// Disk-backed measurement journal: the NWS "persistent state" component.
//
// A deployed NWS memory survives restarts by journalling measurements to
// disk.  The low-level Journal is an append-only text file (one "series
// time value" record per line) with crash-tolerant replay (torn tails and
// mid-file garbage are skipped and counted), rewrite-based compaction, and
// a disk-write fault-injection hook (util/fault.hpp) so write failures are
// testable.  A failed append is counted, the stream is reopened once, and
// the in-core state stays authoritative — a sensor never loses its memory
// because the disk hiccuped.
//
// PersistentMemory wraps the in-core Memory with a Journal and restores all
// series from it on open; ForecastService can also own a Journal directly
// so a full server (memory + forecasters) survives a restart.
#pragma once

#include <filesystem>
#include <fstream>
#include <functional>
#include <string>

#include "nws/memory.hpp"

namespace nws {

class Journal {
 public:
  /// Binds the journal to `path` without touching the file.  Call replay()
  /// and then open_for_append() (or just open_for_append() for a
  /// write-only journal).
  explicit Journal(std::filesystem::path path);

  struct ReplayStats {
    std::size_t recovered = 0;  ///< records accepted by `apply`
    std::size_t skipped = 0;    ///< malformed/torn lines or rejected records
  };

  /// Streams every record of an existing journal through `apply`
  /// (series, measurement); a false return (e.g. out-of-order after
  /// mid-file garbage) counts the record as skipped.  Missing file: fresh
  /// store, zero stats.
  ReplayStats replay(
      const std::function<bool(const std::string&, Measurement)>& apply);

  /// Opens the file for appending.  Throws std::runtime_error on failure.
  void open_for_append();

  /// Appends one record.  Returns false when the write failed (injected or
  /// real); the failure is counted and the stream reopened for the next
  /// attempt.
  bool append(const std::string& series, Measurement m);

  /// Flushes buffered appends to the OS.
  void sync();

  /// Rewrites the journal to hold exactly what `memory` retains (bounds
  /// journal growth, drops any corrupt lines).  Throws on I/O failure;
  /// reopens for append on success.
  void rewrite(const Memory& memory);

  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }
  /// Appends lost to write failures so far (operators should alarm on
  /// growth).
  [[nodiscard]] std::size_t write_failures() const noexcept {
    return write_failures_;
  }

 private:
  static std::string encode(const std::string& series, Measurement m);

  std::filesystem::path path_;
  std::ofstream out_;
  std::size_t write_failures_ = 0;
};

class PersistentMemory {
 public:
  /// Opens (creating if needed) the journal at `path` and replays it into
  /// the in-core memory.  Throws std::runtime_error when the journal
  /// exists but cannot be opened for writing.
  explicit PersistentMemory(std::filesystem::path path,
                            std::size_t series_capacity = 8192);

  /// Records and journals a measurement.  Returns false (and journals
  /// nothing) on out-of-order insertion.  A journal write failure is
  /// tolerated (in-core state keeps the sample) and visible through
  /// write_failures().
  bool record(const std::string& series, Measurement m);

  /// Flushes the journal to the OS.
  void sync();

  /// Rewrites the journal so it holds exactly the measurements currently
  /// retained (bounds journal growth for long-lived sensors, repairs
  /// corruption).  Throws on I/O failure.
  void compact();

  [[nodiscard]] const Memory& memory() const noexcept { return memory_; }
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return journal_.path();
  }
  /// Records replayed from an existing journal at construction.
  [[nodiscard]] std::size_t recovered() const noexcept { return recovered_; }
  /// Malformed / torn lines skipped during recovery.
  [[nodiscard]] std::size_t skipped() const noexcept { return skipped_; }
  /// Journal appends lost to write failures.
  [[nodiscard]] std::size_t write_failures() const noexcept {
    return journal_.write_failures();
  }

 private:
  Memory memory_;
  Journal journal_;
  std::size_t recovered_ = 0;
  std::size_t skipped_ = 0;
};

}  // namespace nws

#include "nws/protocol.hpp"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cstring>

#include "util/fmt.hpp"

namespace nws {

namespace {

/// Zero-allocation token scanner over one request line.
class TokenCursor {
 public:
  explicit TokenCursor(std::string_view line) : line_(line) {}

  /// Next whitespace-delimited token, or an empty view when exhausted
  /// (tokens are never empty, so emptiness is an unambiguous sentinel).
  std::string_view next() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < line_.size() && !is_ws(line_[pos_])) ++pos_;
    return line_.substr(start, pos_ - start);
  }

  /// True when only trailing whitespace remains.
  bool done() {
    skip_ws();
    return pos_ == line_.size();
  }

 private:
  static bool is_ws(char c) { return c == ' ' || c == '\t' || c == '\r'; }
  void skip_ws() {
    while (pos_ < line_.size() && is_ws(line_[pos_])) ++pos_;
  }

  std::string_view line_;
  std::size_t pos_ = 0;
};

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  TokenCursor cursor(line);
  while (!cursor.done()) tokens.push_back(cursor.next());
  return tokens;
}

bool parse_double_token(std::string_view token, double& out) {
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

bool parse_size_token(std::string_view token, std::size_t& out) {
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

bool parse_u64_token(std::string_view token, std::uint64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

bool parse_hex_u64(std::string_view token, std::uint64_t& out) {
  if (token.empty() || token.size() > 16) return false;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out, 16);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

void append_hex_u64(std::string& out, std::uint64_t v) {
  char buf[17];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v, 16);
  out.append(buf, static_cast<std::size_t>(ptr - buf));
}

}  // namespace

TracePrefixStatus parse_trace_prefix(std::string_view line,
                                     std::string_view& rest,
                                     std::uint64_t& trace_id,
                                     std::uint64_t& span_id, bool& sampled) {
  const auto is_ws = [](char c) {
    return c == ' ' || c == '\t' || c == '\r';
  };
  std::size_t pos = 0;
  while (pos < line.size() && is_ws(line[pos])) ++pos;
  // The first token must be exactly "TRC"; anything else (including a verb
  // that merely starts with those letters) is not a prefix at all.
  if (line.size() - pos < 3 || line.compare(pos, 3, "TRC") != 0) {
    return TracePrefixStatus::kNone;
  }
  pos += 3;
  if (pos < line.size() && !is_ws(line[pos])) return TracePrefixStatus::kNone;
  while (pos < line.size() && is_ws(line[pos])) ++pos;
  const std::size_t ctx_start = pos;
  while (pos < line.size() && !is_ws(line[pos])) ++pos;
  const std::string_view ctx = line.substr(ctx_start, pos - ctx_start);
  // ctx is "<trace_hex>-<span_hex>-<0|1>".
  const std::size_t dash1 = ctx.find('-');
  if (dash1 == std::string_view::npos) return TracePrefixStatus::kBad;
  const std::size_t dash2 = ctx.find('-', dash1 + 1);
  if (dash2 == std::string_view::npos) return TracePrefixStatus::kBad;
  std::uint64_t trace = 0;
  std::uint64_t span = 0;
  if (!parse_hex_u64(ctx.substr(0, dash1), trace) || trace == 0) {
    return TracePrefixStatus::kBad;
  }
  if (!parse_hex_u64(ctx.substr(dash1 + 1, dash2 - dash1 - 1), span)) {
    return TracePrefixStatus::kBad;
  }
  const std::string_view bit = ctx.substr(dash2 + 1);
  if (bit.size() != 1 || (bit[0] != '0' && bit[0] != '1')) {
    return TracePrefixStatus::kBad;
  }
  trace_id = trace;
  span_id = span;
  sampled = bit[0] == '1';
  rest = line.substr(pos);
  return TracePrefixStatus::kOk;
}

void append_trace_prefix(std::string& out, std::uint64_t trace_id,
                         std::uint64_t span_id, bool sampled) {
  out += "TRC ";
  append_hex_u64(out, trace_id);
  out += '-';
  append_hex_u64(out, span_id);
  out += sampled ? "-1 " : "-0 ";
}

bool parse_request_into(std::string_view line, Request& out) {
  // Request objects are reused across lines: clear the trace fields before
  // anything can early-return, then peel a prefix if one is present.
  out.trace_id = 0;
  out.span_id = 0;
  out.trace_sampled = false;
  {
    std::string_view rest;
    const TracePrefixStatus trc = parse_trace_prefix(
        line, rest, out.trace_id, out.span_id, out.trace_sampled);
    if (trc == TracePrefixStatus::kBad) return false;
    if (trc == TracePrefixStatus::kOk) line = rest;
  }
  TokenCursor cursor(line);
  const std::string_view verb = cursor.next();
  if (verb.empty()) return false;
  // Series names must be non-empty and contain no whitespace (guaranteed
  // by tokenisation) — nothing else to validate.
  if (verb == "PUT") {
    out.kind = RequestKind::kPut;
    const std::string_view series = cursor.next();
    if (series.empty()) return false;
    out.series.assign(series);
    if (!parse_double_token(cursor.next(), out.measurement.time)) return false;
    if (!parse_double_token(cursor.next(), out.measurement.value)) {
      return false;
    }
    return cursor.done();
  }
  if (verb == "PUTS") {
    out.kind = RequestKind::kPutSeq;
    const std::string_view series = cursor.next();
    if (series.empty()) return false;
    out.series.assign(series);
    if (!parse_u64_token(cursor.next(), out.seq) || out.seq == 0) {
      return false;
    }
    if (!parse_double_token(cursor.next(), out.measurement.time)) return false;
    if (!parse_double_token(cursor.next(), out.measurement.value)) {
      return false;
    }
    return cursor.done();
  }
  if (verb == "PUTB") {
    out.kind = RequestKind::kPutBatch;
    const std::string_view series = cursor.next();
    if (series.empty()) return false;
    out.series.assign(series);
    std::size_t n = 0;
    if (!parse_size_token(cursor.next(), n) || n == 0) return false;
    if (!parse_u64_token(cursor.next(), out.seq) || out.seq == 0) {
      return false;
    }
    out.batch.clear();
    // Reserve from the declared count, but never trust it further than the
    // line could possibly back (each sample needs >= 4 bytes of payload).
    out.batch.reserve(std::min(n, line.size() / 4 + 1));
    for (std::size_t i = 0; i < n; ++i) {
      Measurement m;
      if (!parse_double_token(cursor.next(), m.time)) return false;
      if (!parse_double_token(cursor.next(), m.value)) return false;
      out.batch.push_back(m);
    }
    return cursor.done();
  }
  if (verb == "FORECAST") {
    out.kind = RequestKind::kForecast;
    const std::string_view series = cursor.next();
    if (series.empty()) return false;
    out.series.assign(series);
    return cursor.done();
  }
  if (verb == "VALUES") {
    out.kind = RequestKind::kValues;
    const std::string_view series = cursor.next();
    if (series.empty()) return false;
    out.series.assign(series);
    if (!parse_size_token(cursor.next(), out.max_values) ||
        out.max_values == 0) {
      return false;
    }
    return cursor.done();
  }
  if (verb == "SERIES") {
    out.kind = RequestKind::kSeries;
    return cursor.done();
  }
  if (verb == "STATS") {
    out.kind = RequestKind::kStats;
    out.series.clear();  // empty = global totals
    if (cursor.done()) return true;
    const std::string_view series = cursor.next();
    if (series.empty()) return false;
    out.series.assign(series);
    return cursor.done();
  }
  if (verb == "METRICS") {
    out.kind = RequestKind::kMetrics;
    return cursor.done();
  }
  if (verb == "PING") {
    out.kind = RequestKind::kPing;
    return cursor.done();
  }
  if (verb == "QUIT") {
    out.kind = RequestKind::kQuit;
    return cursor.done();
  }
  if (verb == "PROMOTE") {
    out.kind = RequestKind::kPromote;
    return cursor.done();
  }
  if (verb == "REPL") {
    const std::string_view sub = cursor.next();
    if (sub == "HELLO") {
      out.kind = RequestKind::kReplHello;
      if (!parse_u64_token(cursor.next(), out.epoch) || out.epoch == 0) {
        return false;
      }
      std::uint64_t shards = 0;
      if (!parse_u64_token(cursor.next(), shards) || shards == 0 ||
          shards > 0xFFFFFFFFULL) {
        return false;
      }
      out.shard = static_cast<std::uint32_t>(shards);
      const std::string_view endpoint = cursor.next();
      if (endpoint.empty()) return false;
      out.endpoint.assign(endpoint);
      return cursor.done();
    }
    if (sub == "BATCH" || sub == "RESET") {
      out.kind = sub == "BATCH" ? RequestKind::kReplBatch
                                : RequestKind::kReplReset;
      if (!parse_u64_token(cursor.next(), out.epoch) || out.epoch == 0) {
        return false;
      }
      std::uint64_t shard = 0;
      if (!parse_u64_token(cursor.next(), shard) || shard > 0xFFFFFFFFULL) {
        return false;
      }
      out.shard = static_cast<std::uint32_t>(shard);
      if (!parse_u64_token(cursor.next(), out.seq)) return false;
      out.repl_remaining = 0;
      if (out.kind == RequestKind::kReplReset &&
          !parse_u64_token(cursor.next(), out.repl_remaining)) {
        return false;
      }
      std::size_t n = 0;
      if (!parse_size_token(cursor.next(), n)) return false;
      out.repl.clear();
      // n == 0 is legal (heartbeat / empty snapshot seal); otherwise bound
      // the reserve by what the line could possibly carry (>= 6 bytes per
      // record: a 1-char series plus two 1-char numbers and separators).
      out.repl.reserve(std::min(n, line.size() / 6 + 1));
      for (std::size_t i = 0; i < n; ++i) {
        ReplSample sample;
        const std::string_view series = cursor.next();
        if (series.empty()) return false;
        sample.series.assign(series);
        if (!parse_double_token(cursor.next(), sample.measurement.time)) {
          return false;
        }
        if (!parse_double_token(cursor.next(), sample.measurement.value)) {
          return false;
        }
        out.repl.push_back(std::move(sample));
      }
      return cursor.done();
    }
    return false;
  }
  return false;
}

std::optional<Request> parse_request(std::string_view line) {
  Request req;
  if (!parse_request_into(line, req)) return std::nullopt;
  return req;
}

namespace {

/// The request line proper, no trace prefix — shared by append_request and
/// the binary TEXT op (whose frame carries the context itself, so a prefix
/// inside the body would double-encode it).
void append_request_body(std::string& out, const Request& request) {
  switch (request.kind) {
    case RequestKind::kPut:
      out += "PUT ";
      out += request.series;
      out += ' ';
      append_double(out, request.measurement.time);
      out += ' ';
      append_double(out, request.measurement.value);
      break;
    case RequestKind::kPutSeq:
      out += "PUTS ";
      out += request.series;
      out += ' ';
      append_unsigned(out, request.seq);
      out += ' ';
      append_double(out, request.measurement.time);
      out += ' ';
      append_double(out, request.measurement.value);
      break;
    case RequestKind::kPutBatch:
      out += "PUTB ";
      out += request.series;
      out += ' ';
      append_unsigned(out, request.batch.size());
      out += ' ';
      append_unsigned(out, request.seq);
      for (const Measurement& m : request.batch) {
        out += ' ';
        append_double(out, m.time);
        out += ' ';
        append_double(out, m.value);
      }
      break;
    case RequestKind::kForecast:
      out += "FORECAST ";
      out += request.series;
      break;
    case RequestKind::kValues:
      out += "VALUES ";
      out += request.series;
      out += ' ';
      append_unsigned(out, request.max_values);
      break;
    case RequestKind::kSeries:
      out += "SERIES";
      break;
    case RequestKind::kStats:
      out += "STATS";
      if (!request.series.empty()) {
        out += ' ';
        out += request.series;
      }
      break;
    case RequestKind::kMetrics:
      out += "METRICS";
      break;
    case RequestKind::kPing:
      out += "PING";
      break;
    case RequestKind::kQuit:
      out += "QUIT";
      break;
    case RequestKind::kPromote:
      out += "PROMOTE";
      break;
    case RequestKind::kReplHello:
      out += "REPL HELLO ";
      append_unsigned(out, request.epoch);
      out += ' ';
      append_unsigned(out, request.shard);
      out += ' ';
      out += request.endpoint;
      break;
    case RequestKind::kReplBatch:
    case RequestKind::kReplReset:
      out += request.kind == RequestKind::kReplBatch ? "REPL BATCH "
                                                     : "REPL RESET ";
      append_unsigned(out, request.epoch);
      out += ' ';
      append_unsigned(out, request.shard);
      out += ' ';
      append_unsigned(out, request.seq);
      if (request.kind == RequestKind::kReplReset) {
        out += ' ';
        append_unsigned(out, request.repl_remaining);
      }
      out += ' ';
      append_unsigned(out, request.repl.size());
      for (const ReplSample& s : request.repl) {
        out += ' ';
        out += s.series;
        out += ' ';
        append_double(out, s.measurement.time);
        out += ' ';
        append_double(out, s.measurement.value);
      }
      break;
  }
}

}  // namespace

void append_request(std::string& out, const Request& request) {
  if (request.trace_id != 0) {
    append_trace_prefix(out, request.trace_id, request.span_id,
                        request.trace_sampled);
  }
  append_request_body(out, request);
}

std::string format_request(const Request& request) {
  std::string out;
  append_request(out, request);
  return out;
}

void append_ok(std::string& out) { out += "OK"; }

void append_error(std::string& out, std::string_view message) {
  out += "ERR ";
  out += message;
}

void append_forecast_response(std::string& out, double value, double mae,
                              double mse, std::size_t history,
                              double last_time, std::string_view method) {
  out += "OK ";
  append_double(out, value);
  out += ' ';
  append_double(out, mae);
  out += ' ';
  append_double(out, mse);
  out += ' ';
  append_unsigned(out, history);
  out += ' ';
  append_double(out, last_time);
  out += ' ';
  out += method;
}

void append_values_response(std::string& out,
                            const std::vector<Measurement>& values) {
  out += "OK ";
  append_unsigned(out, values.size());
  for (const Measurement& m : values) {
    out += ' ';
    append_double(out, m.time);
    out += ' ';
    append_double(out, m.value);
  }
}

void append_series_response(std::string& out,
                            const std::vector<std::string>& names) {
  out += "OK ";
  append_unsigned(out, names.size());
  for (const std::string& n : names) {
    out += ' ';
    out += n;
  }
}

void append_put_batch_response(std::string& out, std::uint64_t applied,
                               std::uint64_t dup, std::uint64_t dropped) {
  out += "OK ";
  append_unsigned(out, applied);
  out += ' ';
  append_unsigned(out, dup);
  out += ' ';
  append_unsigned(out, dropped);
}

void append_stats_response(std::string& out, std::uint64_t series,
                           std::uint64_t retained, std::uint64_t appended,
                           std::uint64_t dropped,
                           std::uint64_t replay_skipped) {
  out += "OK ";
  append_unsigned(out, series);
  out += ' ';
  append_unsigned(out, retained);
  out += ' ';
  append_unsigned(out, appended);
  out += ' ';
  append_unsigned(out, dropped);
  out += ' ';
  append_unsigned(out, replay_skipped);
}

void append_stats_repl_suffix(std::string& out, std::string_view role,
                              std::uint64_t epoch, std::uint64_t repl_lag) {
  out += " role=";
  out += role;
  out += " epoch=";
  append_unsigned(out, epoch);
  out += " repl_lag=";
  append_unsigned(out, repl_lag);
}

void append_repl_hello_response(std::string& out, std::uint64_t epoch,
                                std::uint64_t synced_epoch,
                                const std::vector<std::uint64_t>& watermarks) {
  out += "OK ";
  append_unsigned(out, epoch);
  out += ' ';
  append_unsigned(out, synced_epoch);
  out += ' ';
  append_unsigned(out, watermarks.size());
  for (const std::uint64_t w : watermarks) {
    out += ' ';
    append_unsigned(out, w);
  }
}

void append_repl_ack(std::string& out, std::uint64_t watermark) {
  out += "OK ";
  append_unsigned(out, watermark);
}

void append_metrics_response(std::string& out, std::string_view body) {
  while (!body.empty() && body.back() == '\n') body.remove_suffix(1);
  std::size_t lines = 0;
  if (!body.empty()) {
    lines = 1;
    for (const char c : body) {
      if (c == '\n') ++lines;
    }
  }
  out += "OK ";
  append_unsigned(out, lines);
  if (!body.empty()) {
    out += '\n';
    out += body;
  }
}

std::string format_ok() { return "OK"; }

std::string format_error(std::string_view message) {
  std::string out;
  append_error(out, message);
  return out;
}

std::string format_forecast_response(double value, double mae, double mse,
                                     std::size_t history, double last_time,
                                     std::string_view method) {
  std::string out;
  append_forecast_response(out, value, mae, mse, history, last_time, method);
  return out;
}

std::string format_values_response(const std::vector<Measurement>& values) {
  std::string out;
  append_values_response(out, values);
  return out;
}

std::string format_series_response(const std::vector<std::string>& names) {
  std::string out;
  append_series_response(out, names);
  return out;
}

bool response_is_ok(std::string_view response) {
  return response.rfind("OK", 0) == 0 &&
         (response.size() == 2 || response[2] == ' ');
}

std::optional<ForecastReply> parse_forecast_response(
    std::string_view response) {
  if (!response_is_ok(response)) return std::nullopt;
  const auto tokens = tokenize(response);
  if (tokens.size() != 7) return std::nullopt;
  ForecastReply reply;
  if (!parse_double_token(tokens[1], reply.value)) return std::nullopt;
  if (!parse_double_token(tokens[2], reply.mae)) return std::nullopt;
  if (!parse_double_token(tokens[3], reply.mse)) return std::nullopt;
  if (!parse_size_token(tokens[4], reply.history)) return std::nullopt;
  if (!parse_double_token(tokens[5], reply.last_time)) return std::nullopt;
  reply.method = std::string(tokens[6]);
  return reply;
}

std::optional<std::vector<Measurement>> parse_values_response(
    std::string_view response) {
  if (!response_is_ok(response)) return std::nullopt;
  const auto tokens = tokenize(response);
  if (tokens.size() < 2) return std::nullopt;
  std::size_t count = 0;
  if (!parse_size_token(tokens[1], count)) return std::nullopt;
  if (tokens.size() != 2 + 2 * count) return std::nullopt;
  std::vector<Measurement> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Measurement m;
    if (!parse_double_token(tokens[2 + 2 * i], m.time)) return std::nullopt;
    if (!parse_double_token(tokens[3 + 2 * i], m.value)) return std::nullopt;
    out.push_back(m);
  }
  return out;
}

std::optional<std::vector<std::string>> parse_series_response(
    std::string_view response) {
  if (!response_is_ok(response)) return std::nullopt;
  const auto tokens = tokenize(response);
  if (tokens.size() < 2) return std::nullopt;
  std::size_t count = 0;
  if (!parse_size_token(tokens[1], count)) return std::nullopt;
  if (tokens.size() != 2 + count) return std::nullopt;
  std::vector<std::string> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.emplace_back(tokens[2 + i]);
  }
  return out;
}

std::optional<PutBatchReply> parse_put_batch_response(
    std::string_view response) {
  if (!response_is_ok(response)) return std::nullopt;
  const auto tokens = tokenize(response);
  if (tokens.size() != 4) return std::nullopt;
  PutBatchReply reply;
  if (!parse_u64_token(tokens[1], reply.applied)) return std::nullopt;
  if (!parse_u64_token(tokens[2], reply.dup)) return std::nullopt;
  if (!parse_u64_token(tokens[3], reply.dropped)) return std::nullopt;
  return reply;
}

std::optional<StatsReply> parse_stats_response(std::string_view response) {
  if (!response_is_ok(response)) return std::nullopt;
  const auto tokens = tokenize(response);
  // 5 numbers since the telemetry PR; the 4-number form is still accepted
  // so a new client can read an old server's reply (replay_skipped = 0).
  // Since the failover PR the global form carries a trailing "key=value"
  // suffix (role/epoch/repl_lag); unknown keys are skipped so the parser
  // stays forward-compatible, but a bare extra token is still malformed.
  if (tokens.size() < 5) return std::nullopt;
  StatsReply reply;
  if (!parse_u64_token(tokens[1], reply.series)) return std::nullopt;
  if (!parse_u64_token(tokens[2], reply.retained)) return std::nullopt;
  if (!parse_u64_token(tokens[3], reply.appended)) return std::nullopt;
  if (!parse_u64_token(tokens[4], reply.dropped)) return std::nullopt;
  std::size_t next = 5;
  if (next < tokens.size() &&
      tokens[next].find('=') == std::string_view::npos) {
    if (!parse_u64_token(tokens[next], reply.replay_skipped)) {
      return std::nullopt;
    }
    ++next;
  }
  for (; next < tokens.size(); ++next) {
    const std::string_view token = tokens[next];
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) return std::nullopt;
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (value.empty()) return std::nullopt;
    if (key == "role") {
      reply.role.assign(value);
    } else if (key == "epoch") {
      if (!parse_u64_token(value, reply.epoch)) return std::nullopt;
    } else if (key == "repl_lag") {
      if (!parse_u64_token(value, reply.repl_lag)) return std::nullopt;
    }
  }
  return reply;
}

std::optional<ReplHelloReply> parse_repl_hello_response(
    std::string_view response) {
  if (!response_is_ok(response)) return std::nullopt;
  const auto tokens = tokenize(response);
  if (tokens.size() < 4) return std::nullopt;
  ReplHelloReply reply;
  if (!parse_u64_token(tokens[1], reply.epoch)) return std::nullopt;
  if (!parse_u64_token(tokens[2], reply.synced_epoch)) return std::nullopt;
  std::size_t count = 0;
  if (!parse_size_token(tokens[3], count)) return std::nullopt;
  if (tokens.size() != 4 + count) return std::nullopt;
  reply.watermarks.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t w = 0;
    if (!parse_u64_token(tokens[4 + i], w)) return std::nullopt;
    reply.watermarks.push_back(w);
  }
  return reply;
}

std::optional<std::uint64_t> parse_repl_ack(std::string_view response) {
  if (!response_is_ok(response)) return std::nullopt;
  const auto tokens = tokenize(response);
  if (tokens.size() != 2) return std::nullopt;
  std::uint64_t watermark = 0;
  if (!parse_u64_token(tokens[1], watermark)) return std::nullopt;
  return watermark;
}

std::optional<std::uint16_t> parse_not_primary(std::string_view response) {
  const auto tokens = tokenize(response);
  if (tokens.size() != 3 || tokens[0] != "ERR" || tokens[1] != "not_primary") {
    return std::nullopt;
  }
  const std::string_view endpoint = tokens[2];
  if (endpoint == "-") return std::uint16_t{0};
  const std::size_t colon = endpoint.rfind(':');
  const std::string_view port_text =
      colon == std::string_view::npos ? endpoint : endpoint.substr(colon + 1);
  std::uint64_t port = 0;
  if (!parse_u64_token(port_text, port) || port == 0 || port > 0xFFFF) {
    return std::nullopt;
  }
  return static_cast<std::uint16_t>(port);
}

std::optional<int> parse_retry_after_ms(std::string_view response) {
  const auto tokens = tokenize(response);
  if (tokens.size() < 3 || tokens[0] != "ERR" || tokens[1] != "busy") {
    return std::nullopt;
  }
  constexpr std::string_view kKey = "retry_after_ms=";
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    if (tokens[i].rfind(kKey, 0) != 0) continue;
    const std::string_view value = tokens[i].substr(kKey.size());
    std::uint64_t ms = 0;
    if (!parse_u64_token(value, ms) || ms > 1000000) return std::nullopt;
    return static_cast<int>(ms);
  }
  return std::nullopt;
}

std::optional<std::uint64_t> parse_stale_epoch(std::string_view response) {
  const auto tokens = tokenize(response);
  if (tokens.size() != 3 || tokens[0] != "ERR" ||
      tokens[1] != "stale_epoch") {
    return std::nullopt;
  }
  std::uint64_t epoch = 0;
  if (!parse_u64_token(tokens[2], epoch)) return std::nullopt;
  return epoch;
}

std::optional<std::size_t> parse_metrics_header(std::string_view header) {
  const auto tokens = tokenize(header);
  if (tokens.size() != 2 || tokens[0] != "OK") return std::nullopt;
  std::size_t lines = 0;
  if (!parse_size_token(tokens[1], lines)) return std::nullopt;
  return lines;
}

std::optional<std::string> parse_metrics_response(std::string_view response) {
  const std::size_t newline = response.find('\n');
  const std::string_view header = response.substr(
      0, newline == std::string_view::npos ? response.size() : newline);
  const auto expected = parse_metrics_header(header);
  if (!expected) return std::nullopt;
  std::string_view body = newline == std::string_view::npos
                              ? std::string_view{}
                              : response.substr(newline + 1);
  while (!body.empty() && body.back() == '\n') body.remove_suffix(1);
  std::size_t lines = 0;
  if (!body.empty()) {
    lines = 1;
    for (const char c : body) {
      if (c == '\n') ++lines;
    }
  }
  if (lines != *expected) return std::nullopt;
  std::string out(body);
  if (!out.empty()) out += '\n';
  return out;
}

// ---------------------------------------------------------------------------
// Wire protocol v2: binary framing.

namespace {

// All multi-byte fields are explicitly little-endian, independent of host
// byte order; doubles travel as their IEEE-754 bit pattern in a u64.

void put_u16_le(std::string& out, std::uint16_t v) {
  out += static_cast<char>(v & 0xFF);
  out += static_cast<char>((v >> 8) & 0xFF);
}

void put_u32_le(std::string& out, std::uint32_t v) {
  out += static_cast<char>(v & 0xFF);
  out += static_cast<char>((v >> 8) & 0xFF);
  out += static_cast<char>((v >> 16) & 0xFF);
  out += static_cast<char>((v >> 24) & 0xFF);
}

void put_u64_le(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out += static_cast<char>((v >> shift) & 0xFF);
  }
}

void put_f64_le(std::string& out, double v) {
  put_u64_le(out, std::bit_cast<std::uint64_t>(v));
}

std::uint32_t load_u32_le(const char* p) {
  const auto b = [p](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]));
  };
  return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

/// Bounds-checked little-endian reader over a frame body.
class BinCursor {
 public:
  explicit BinCursor(std::string_view data) : data_(data) {}

  bool u16(std::uint16_t& out) {
    if (remaining() < 2) return false;
    const auto b = [this](std::size_t i) {
      return static_cast<std::uint16_t>(
          static_cast<unsigned char>(data_[pos_ + i]));
    };
    out = static_cast<std::uint16_t>(b(0) | (b(1) << 8));
    pos_ += 2;
    return true;
  }

  bool u32(std::uint32_t& out) {
    if (remaining() < 4) return false;
    out = load_u32_le(data_.data() + pos_);
    pos_ += 4;
    return true;
  }

  bool u64(std::uint64_t& out) {
    if (remaining() < 8) return false;
    out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(data_[pos_ + static_cast<std::size_t>(i)]))
             << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool f64(double& out) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    out = std::bit_cast<double>(bits);
    return true;
  }

  bool bytes(std::size_t n, std::string_view& out) {
    if (remaining() < n) return false;
    out = data_.substr(pos_, n);
    pos_ += n;
    return true;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

/// A binary series name must round-trip through the text oracle, so it
/// obeys the same grammar: non-empty, no whitespace or newlines.
bool valid_series_name(std::string_view series) {
  if (series.empty()) return false;
  for (const char c : series) {
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') return false;
  }
  return true;
}

bool read_series(BinCursor& cursor, std::string& out) {
  std::uint16_t len = 0;
  std::string_view bytes;
  if (!cursor.u16(len) || !cursor.bytes(len, bytes)) return false;
  if (!valid_series_name(bytes)) return false;
  out.assign(bytes);
  return true;
}

}  // namespace

BinFrameStatus extract_binary_frame(std::string_view buffer,
                                    std::size_t max_frame_bytes,
                                    std::size_t& frame_end,
                                    std::string_view& payload, bool& traced) {
  if (buffer.size() < kBinFrameHeaderBytes) return BinFrameStatus::kNeedMore;
  const std::uint32_t word = load_u32_le(buffer.data());
  traced = (word & kBinTraceFlag) != 0;
  const std::uint32_t len = word & ~kBinTraceFlag;
  if (len == 0 || len > max_frame_bytes) return BinFrameStatus::kError;
  // A flagged frame must at least hold the context block plus an op byte.
  if (traced && len < kBinTraceCtxBytes + 1) return BinFrameStatus::kError;
  if (buffer.size() < kBinFrameHeaderBytes + len) {
    return BinFrameStatus::kNeedMore;
  }
  frame_end = kBinFrameHeaderBytes + len;
  payload = buffer.substr(kBinFrameHeaderBytes, len);
  return BinFrameStatus::kFrame;
}

BinFrameStatus extract_binary_frame(std::string_view buffer,
                                    std::size_t max_frame_bytes,
                                    std::size_t& frame_end,
                                    std::string_view& payload) {
  bool traced = false;
  const BinFrameStatus status =
      extract_binary_frame(buffer, max_frame_bytes, frame_end, payload, traced);
  // Callers of this overload (response streams, pre-trace request paths)
  // never expect the flag; a flagged length word there is garbage.
  if (status == BinFrameStatus::kFrame && traced) return BinFrameStatus::kError;
  return status;
}

void append_binary_request(std::string& out, const Request& request) {
  const std::size_t header_at = out.size();
  out.append(kBinFrameHeaderBytes, '\0');  // length prefix, patched below
  const bool traced = request.trace_id != 0;
  if (traced) {
    put_u64_le(out, request.trace_id);
    put_u64_le(out, request.span_id);
    out += static_cast<char>(request.trace_sampled ? 1 : 0);
  }

  // A name too long for a u16 length field rides the TEXT op (the text
  // path's own line cap is the real bound).
  bool series_fits =
      request.series.size() <= 0xFFFF && request.endpoint.size() <= 0xFFFF;
  for (const ReplSample& s : request.repl) {
    series_fits = series_fits && s.series.size() <= 0xFFFF;
  }
  switch (series_fits ? request.kind : RequestKind::kSeries) {
    case RequestKind::kPut:
      out += static_cast<char>(kBinOpPut);
      put_u16_le(out, static_cast<std::uint16_t>(request.series.size()));
      out += request.series;
      put_f64_le(out, request.measurement.time);
      put_f64_le(out, request.measurement.value);
      break;
    case RequestKind::kPutSeq:
      out += static_cast<char>(kBinOpPutSeq);
      put_u16_le(out, static_cast<std::uint16_t>(request.series.size()));
      out += request.series;
      put_u64_le(out, request.seq);
      put_f64_le(out, request.measurement.time);
      put_f64_le(out, request.measurement.value);
      break;
    case RequestKind::kPutBatch:
      out += static_cast<char>(kBinOpPutBatch);
      put_u16_le(out, static_cast<std::uint16_t>(request.series.size()));
      out += request.series;
      put_u64_le(out, request.seq);
      put_u32_le(out, static_cast<std::uint32_t>(request.batch.size()));
      for (const Measurement& m : request.batch) {
        put_f64_le(out, m.time);
        put_f64_le(out, m.value);
      }
      break;
    case RequestKind::kForecast:
      out += static_cast<char>(kBinOpForecast);
      put_u16_le(out, static_cast<std::uint16_t>(request.series.size()));
      out += request.series;
      break;
    case RequestKind::kMetrics:
      out += static_cast<char>(kBinOpMetrics);
      break;
    case RequestKind::kPing:
      out += static_cast<char>(kBinOpPing);
      break;
    case RequestKind::kQuit:
      out += static_cast<char>(kBinOpQuit);
      break;
    case RequestKind::kReplHello:
      out += static_cast<char>(kBinOpReplHello);
      put_u64_le(out, request.epoch);
      put_u32_le(out, request.shard);
      put_u16_le(out, static_cast<std::uint16_t>(request.endpoint.size()));
      out += request.endpoint;
      break;
    case RequestKind::kReplBatch:
    case RequestKind::kReplReset:
      out += static_cast<char>(request.kind == RequestKind::kReplBatch
                                   ? kBinOpReplBatch
                                   : kBinOpReplReset);
      put_u64_le(out, request.epoch);
      put_u32_le(out, request.shard);
      put_u64_le(out, request.seq);
      if (request.kind == RequestKind::kReplReset) {
        put_u64_le(out, request.repl_remaining);
      }
      put_u32_le(out, static_cast<std::uint32_t>(request.repl.size()));
      for (const ReplSample& s : request.repl) {
        put_u16_le(out, static_cast<std::uint16_t>(s.series.size()));
        out += s.series;
        put_f64_le(out, s.measurement.time);
        put_f64_le(out, s.measurement.value);
      }
      break;
    default:
      // Cold verbs (VALUES / SERIES / STATS) and oversized series names:
      // the body is the text request line (sans trace prefix — the frame
      // context block already carries it).
      out += static_cast<char>(kBinOpText);
      append_request_body(out, request);
      break;
  }

  const std::size_t body = out.size() - header_at - kBinFrameHeaderBytes;
  auto len = static_cast<std::uint32_t>(body);
  if (traced) len |= kBinTraceFlag;
  out[header_at + 0] = static_cast<char>(len & 0xFF);
  out[header_at + 1] = static_cast<char>((len >> 8) & 0xFF);
  out[header_at + 2] = static_cast<char>((len >> 16) & 0xFF);
  out[header_at + 3] = static_cast<char>((len >> 24) & 0xFF);
}

bool parse_binary_request(std::string_view payload, Request& out) {
  // Reused Request: clear trace context up front (the TEXT op re-parses
  // through parse_request_into, which clears again — harmless).
  out.trace_id = 0;
  out.span_id = 0;
  out.trace_sampled = false;
  if (payload.empty()) return false;
  const auto op = static_cast<std::uint8_t>(payload[0]);
  BinCursor cursor(payload.substr(1));
  switch (op) {
    case kBinOpPut:
      out.kind = RequestKind::kPut;
      if (!read_series(cursor, out.series)) return false;
      if (!cursor.f64(out.measurement.time)) return false;
      if (!cursor.f64(out.measurement.value)) return false;
      return cursor.done();
    case kBinOpPutSeq:
      out.kind = RequestKind::kPutSeq;
      if (!read_series(cursor, out.series)) return false;
      if (!cursor.u64(out.seq) || out.seq == 0) return false;
      if (!cursor.f64(out.measurement.time)) return false;
      if (!cursor.f64(out.measurement.value)) return false;
      return cursor.done();
    case kBinOpPutBatch: {
      out.kind = RequestKind::kPutBatch;
      if (!read_series(cursor, out.series)) return false;
      if (!cursor.u64(out.seq) || out.seq == 0) return false;
      std::uint32_t n = 0;
      if (!cursor.u32(n) || n == 0) return false;
      // The declared count must account for the remaining body exactly —
      // checked before reserving, so a hostile count can never balloon
      // the allocation past the (already capped) frame size.
      if (cursor.remaining() != static_cast<std::size_t>(n) * 16) {
        return false;
      }
      out.batch.clear();
      out.batch.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        Measurement m;
        if (!cursor.f64(m.time) || !cursor.f64(m.value)) return false;
        out.batch.push_back(m);
      }
      return cursor.done();
    }
    case kBinOpForecast:
      out.kind = RequestKind::kForecast;
      if (!read_series(cursor, out.series)) return false;
      return cursor.done();
    case kBinOpMetrics:
      out.kind = RequestKind::kMetrics;
      return cursor.done();
    case kBinOpPing:
      out.kind = RequestKind::kPing;
      return cursor.done();
    case kBinOpQuit:
      out.kind = RequestKind::kQuit;
      return cursor.done();
    case kBinOpReplHello: {
      out.kind = RequestKind::kReplHello;
      if (!cursor.u64(out.epoch) || out.epoch == 0) return false;
      if (!cursor.u32(out.shard) || out.shard == 0) return false;
      // The endpoint obeys the same token grammar as a series name.
      if (!read_series(cursor, out.endpoint)) return false;
      return cursor.done();
    }
    case kBinOpReplBatch:
    case kBinOpReplReset: {
      out.kind = op == kBinOpReplBatch ? RequestKind::kReplBatch
                                       : RequestKind::kReplReset;
      if (!cursor.u64(out.epoch) || out.epoch == 0) return false;
      if (!cursor.u32(out.shard)) return false;
      if (!cursor.u64(out.seq)) return false;
      out.repl_remaining = 0;
      if (op == kBinOpReplReset && !cursor.u64(out.repl_remaining)) {
        return false;
      }
      std::uint32_t n = 0;
      if (!cursor.u32(n)) return false;
      out.repl.clear();
      // Records are variable-length, so the count cannot be squared with
      // the body size up front; bound the reserve by the smallest possible
      // record (u16 len + 1-byte series + two f64s = 19 bytes).
      out.repl.reserve(
          std::min<std::size_t>(n, cursor.remaining() / 19 + 1));
      for (std::uint32_t i = 0; i < n; ++i) {
        ReplSample sample;
        if (!read_series(cursor, sample.series)) return false;
        if (!cursor.f64(sample.measurement.time)) return false;
        if (!cursor.f64(sample.measurement.value)) return false;
        out.repl.push_back(std::move(sample));
      }
      return cursor.done();
    }
    case kBinOpText:
      return parse_request_into(payload.substr(1), out);
    default:
      return false;
  }
}

bool parse_binary_request(std::string_view payload, bool traced,
                          Request& out) {
  if (!traced) return parse_binary_request(payload, out);
  if (payload.size() < kBinTraceCtxBytes + 1) return false;
  BinCursor ctx(payload.substr(0, kBinTraceCtxBytes));
  std::uint64_t trace = 0;
  std::uint64_t span = 0;
  if (!ctx.u64(trace) || !ctx.u64(span) || trace == 0) return false;
  const auto sampled = static_cast<unsigned char>(payload[16]);
  if (sampled > 1) return false;
  if (!parse_binary_request(payload.substr(kBinTraceCtxBytes), out)) {
    return false;
  }
  // Assign after the inner parse: it clears the fields (and a TEXT-op body
  // may carry its own prefix — the frame context is authoritative).
  out.trace_id = trace;
  out.span_id = span;
  out.trace_sampled = sampled == 1;
  return true;
}

void append_binary_response(std::string& out, std::string_view payload) {
  put_u32_le(out, static_cast<std::uint32_t>(payload.size()));
  out += payload;
}

}  // namespace nws

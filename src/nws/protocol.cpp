#include "nws/protocol.hpp"

#include <charconv>
#include <sstream>

namespace nws {

namespace {

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t' ||
                                 line[pos] == '\r')) {
      ++pos;
    }
    const std::size_t start = pos;
    while (pos < line.size() && line[pos] != ' ' && line[pos] != '\t' &&
           line[pos] != '\r') {
      ++pos;
    }
    if (pos > start) tokens.push_back(line.substr(start, pos - start));
  }
  return tokens;
}

bool parse_double_token(std::string_view token, double& out) {
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

bool parse_size_token(std::string_view token, std::size_t& out) {
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

bool parse_u64_token(std::string_view token, std::uint64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

/// Series names must be non-empty and contain no whitespace (guaranteed by
/// tokenisation) — nothing else to validate.
std::string series_token(std::string_view token) {
  return std::string(token);
}

}  // namespace

std::optional<Request> parse_request(std::string_view line) {
  const auto tokens = tokenize(line);
  if (tokens.empty()) return std::nullopt;
  Request req;
  const std::string_view verb = tokens[0];
  if (verb == "PUT") {
    if (tokens.size() != 4) return std::nullopt;
    req.kind = RequestKind::kPut;
    req.series = series_token(tokens[1]);
    if (!parse_double_token(tokens[2], req.measurement.time)) {
      return std::nullopt;
    }
    if (!parse_double_token(tokens[3], req.measurement.value)) {
      return std::nullopt;
    }
    return req;
  }
  if (verb == "PUTS") {
    if (tokens.size() != 5) return std::nullopt;
    req.kind = RequestKind::kPutSeq;
    req.series = series_token(tokens[1]);
    if (!parse_u64_token(tokens[2], req.seq) || req.seq == 0) {
      return std::nullopt;
    }
    if (!parse_double_token(tokens[3], req.measurement.time)) {
      return std::nullopt;
    }
    if (!parse_double_token(tokens[4], req.measurement.value)) {
      return std::nullopt;
    }
    return req;
  }
  if (verb == "FORECAST") {
    if (tokens.size() != 2) return std::nullopt;
    req.kind = RequestKind::kForecast;
    req.series = series_token(tokens[1]);
    return req;
  }
  if (verb == "VALUES") {
    if (tokens.size() != 3) return std::nullopt;
    req.kind = RequestKind::kValues;
    req.series = series_token(tokens[1]);
    if (!parse_size_token(tokens[2], req.max_values) || req.max_values == 0) {
      return std::nullopt;
    }
    return req;
  }
  if (verb == "SERIES") {
    if (tokens.size() != 1) return std::nullopt;
    req.kind = RequestKind::kSeries;
    return req;
  }
  if (verb == "PING") {
    if (tokens.size() != 1) return std::nullopt;
    req.kind = RequestKind::kPing;
    return req;
  }
  if (verb == "QUIT") {
    if (tokens.size() != 1) return std::nullopt;
    req.kind = RequestKind::kQuit;
    return req;
  }
  return std::nullopt;
}

std::string format_request(const Request& request) {
  std::ostringstream ss;
  ss.precision(17);
  switch (request.kind) {
    case RequestKind::kPut:
      ss << "PUT " << request.series << ' ' << request.measurement.time << ' '
         << request.measurement.value;
      break;
    case RequestKind::kPutSeq:
      ss << "PUTS " << request.series << ' ' << request.seq << ' '
         << request.measurement.time << ' ' << request.measurement.value;
      break;
    case RequestKind::kForecast:
      ss << "FORECAST " << request.series;
      break;
    case RequestKind::kValues:
      ss << "VALUES " << request.series << ' ' << request.max_values;
      break;
    case RequestKind::kSeries:
      ss << "SERIES";
      break;
    case RequestKind::kPing:
      ss << "PING";
      break;
    case RequestKind::kQuit:
      ss << "QUIT";
      break;
  }
  return ss.str();
}

std::string format_ok() { return "OK"; }

std::string format_error(std::string_view message) {
  return "ERR " + std::string(message);
}

std::string format_forecast_response(double value, double mae, double mse,
                                     std::size_t history, double last_time,
                                     std::string_view method) {
  std::ostringstream ss;
  ss.precision(17);
  ss << "OK " << value << ' ' << mae << ' ' << mse << ' ' << history << ' '
     << last_time << ' ' << method;
  return ss.str();
}

std::string format_values_response(const std::vector<Measurement>& values) {
  std::ostringstream ss;
  ss.precision(17);
  ss << "OK " << values.size();
  for (const Measurement& m : values) {
    ss << ' ' << m.time << ' ' << m.value;
  }
  return ss.str();
}

std::string format_series_response(const std::vector<std::string>& names) {
  std::ostringstream ss;
  ss << "OK " << names.size();
  for (const std::string& n : names) ss << ' ' << n;
  return ss.str();
}

bool response_is_ok(std::string_view response) {
  return response.rfind("OK", 0) == 0 &&
         (response.size() == 2 || response[2] == ' ');
}

std::optional<ForecastReply> parse_forecast_response(
    std::string_view response) {
  if (!response_is_ok(response)) return std::nullopt;
  const auto tokens = tokenize(response);
  if (tokens.size() != 7) return std::nullopt;
  ForecastReply reply;
  if (!parse_double_token(tokens[1], reply.value)) return std::nullopt;
  if (!parse_double_token(tokens[2], reply.mae)) return std::nullopt;
  if (!parse_double_token(tokens[3], reply.mse)) return std::nullopt;
  if (!parse_size_token(tokens[4], reply.history)) return std::nullopt;
  if (!parse_double_token(tokens[5], reply.last_time)) return std::nullopt;
  reply.method = std::string(tokens[6]);
  return reply;
}

std::optional<std::vector<Measurement>> parse_values_response(
    std::string_view response) {
  if (!response_is_ok(response)) return std::nullopt;
  const auto tokens = tokenize(response);
  if (tokens.size() < 2) return std::nullopt;
  std::size_t count = 0;
  if (!parse_size_token(tokens[1], count)) return std::nullopt;
  if (tokens.size() != 2 + 2 * count) return std::nullopt;
  std::vector<Measurement> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Measurement m;
    if (!parse_double_token(tokens[2 + 2 * i], m.time)) return std::nullopt;
    if (!parse_double_token(tokens[3 + 2 * i], m.value)) return std::nullopt;
    out.push_back(m);
  }
  return out;
}

std::optional<std::vector<std::string>> parse_series_response(
    std::string_view response) {
  if (!response_is_ok(response)) return std::nullopt;
  const auto tokens = tokenize(response);
  if (tokens.size() < 2) return std::nullopt;
  std::size_t count = 0;
  if (!parse_size_token(tokens[1], count)) return std::nullopt;
  if (tokens.size() != 2 + count) return std::nullopt;
  std::vector<std::string> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.emplace_back(tokens[2 + i]);
  }
  return out;
}

}  // namespace nws

#include "nws/memory.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace nws {

namespace {

// Process-wide out-of-order drop total (per-store counts stay on the
// store; this feeds METRICS without walking every shard's memory).
obs::Counter& ooo_dropped_counter() {
  static obs::Counter& c = obs::registry().counter(
      "nws_store_ooo_dropped_total",
      "Out-of-order measurements rejected by SeriesStore");
  return c;
}

}  // namespace

SeriesStore::SeriesStore(std::size_t capacity) : buf_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("SeriesStore: zero capacity");
  }
}

bool SeriesStore::append(Measurement m) {
  if (size_ > 0 && m.time < newest().time) {
    ++dropped_;
    ooo_dropped_counter().inc();
    return false;
  }
  if (size_ == buf_.size()) {
    buf_[head_] = m;
    head_ = (head_ + 1) % buf_.size();
  } else {
    buf_[(head_ + size_) % buf_.size()] = m;
    ++size_;
  }
  ++appended_;
  return true;
}

const Measurement& SeriesStore::at(std::size_t i) const {
  assert(i < size_);
  return buf_[(head_ + i) % buf_.size()];
}

std::vector<Measurement> SeriesStore::range(double t0, double t1) const {
  std::vector<Measurement> out;
  for (std::size_t i = 0; i < size_; ++i) {
    const Measurement& m = at(i);
    if (m.time > t1) break;
    if (m.time >= t0) out.push_back(m);
  }
  return out;
}

std::vector<double> SeriesStore::values() const {
  std::vector<double> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(at(i).value);
  return out;
}

Memory::Memory(std::size_t default_capacity)
    : default_capacity_(default_capacity) {
  if (default_capacity == 0) {
    throw std::invalid_argument("Memory: zero default capacity");
  }
}

bool Memory::record(const std::string& series, Measurement m) {
  auto it = stores_.find(series);
  if (it == stores_.end()) {
    it = stores_.emplace(series, SeriesStore(default_capacity_)).first;
  }
  return it->second.append(m);
}

bool Memory::contains(const std::string& series) const {
  return stores_.contains(series);
}

const SeriesStore* Memory::find(const std::string& series) const {
  const auto it = stores_.find(series);
  return it == stores_.end() ? nullptr : &it->second;
}

Memory::Totals Memory::totals() const {
  Totals t;
  for (const auto& [_, store] : stores_) {
    t.retained += store.size();
    t.appended += store.appended();
    t.dropped += store.dropped();
  }
  return t;
}

std::vector<std::string> Memory::series_names() const {
  std::vector<std::string> names;
  names.reserve(stores_.size());
  for (const auto& [name, _] : stores_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace nws

#include "nws/hash_ring.hpp"

#include <algorithm>
#include <charconv>

namespace nws {

HashRing::HashRing(const std::vector<std::string>& identities,
                   std::size_t vnodes)
    : nodes_(identities.size()), vnodes_(vnodes == 0 ? 1 : vnodes) {
  points_.reserve(nodes_ * vnodes_);
  std::string key;
  for (std::size_t i = 0; i < identities.size(); ++i) {
    for (std::size_t v = 0; v < vnodes_; ++v) {
      key.assign(identities[i]);
      key.push_back('#');
      char digits[20];
      const auto [end, ec] = std::to_chars(digits, digits + sizeof digits, v);
      key.append(digits, end);
      points_.emplace_back(fnv1a64(key), static_cast<std::uint32_t>(i));
    }
  }
  // Tie-break equal hashes by node index so the layout is a total order —
  // identical on every router regardless of construction order quirks.
  std::sort(points_.begin(), points_.end());
}

std::size_t HashRing::lookup_hash(std::uint64_t h) const noexcept {
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const auto& point, std::uint64_t value) { return point.first < value; });
  return it != points_.end() ? it->second : points_.front().second;
}

std::vector<double> HashRing::ownership() const {
  std::vector<double> share(nodes_, 0.0);
  if (points_.empty()) return share;
  constexpr double kCircle = 18446744073709551616.0;  // 2^64
  // Point i owns the arc (hash[i-1], hash[i]]; the first point also owns
  // the wrap-around arc above the last point.
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const std::uint64_t hi = points_[i].first;
    const std::uint64_t lo = i == 0 ? points_.back().first : points_[i - 1].first;
    const std::uint64_t arc = hi - lo;  // mod-2^64 wrap is exactly right
    share[points_[i].second] += (arc == 0 && points_.size() == 1)
                                    ? kCircle
                                    : static_cast<double>(arc);
  }
  for (double& s : share) s /= kCircle;
  return share;
}

}  // namespace nws

#include "nws/replication.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <system_error>

namespace nws {

namespace {

bool parse_u64(std::string_view token, std::uint64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

}  // namespace

bool save_repl_meta(const std::filesystem::path& path,
                    const ReplMetaState& state) {
  // The trailing "end" token doubles as the torn-write detector: a partial
  // write loses it and load_repl_meta refuses the file.
  std::ostringstream line;
  line << "replmeta " << state.epoch << ' ' << state.synced_epoch << ' '
       << state.watermarks.size();
  for (const std::uint64_t w : state.watermarks) line << ' ' << w;
  line << " end\n";

  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << line.str();
    out.flush();
    if (!out) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

std::optional<ReplMetaState> load_repl_meta(
    const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string magic;
  if (!(in >> magic) || magic != "replmeta") return std::nullopt;
  ReplMetaState state;
  std::string token;
  if (!(in >> token) || !parse_u64(token, state.epoch)) return std::nullopt;
  if (!(in >> token) || !parse_u64(token, state.synced_epoch)) {
    return std::nullopt;
  }
  std::uint64_t count = 0;
  if (!(in >> token) || !parse_u64(token, count) || count > 1u << 20) {
    return std::nullopt;
  }
  state.watermarks.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t w = 0;
    if (!(in >> token) || !parse_u64(token, w)) return std::nullopt;
    state.watermarks.push_back(w);
  }
  if (!(in >> token) || token != "end") return std::nullopt;
  return state;
}

std::vector<ReplEndpoint> parse_endpoint_list(std::string_view text) {
  std::vector<ReplEndpoint> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) comma = text.size();
    std::string_view entry = text.substr(pos, comma - pos);
    pos = comma + 1;
    while (!entry.empty() && (entry.front() == ' ' || entry.front() == '\t')) {
      entry.remove_prefix(1);
    }
    while (!entry.empty() && (entry.back() == ' ' || entry.back() == '\t')) {
      entry.remove_suffix(1);
    }
    if (entry.empty()) continue;
    ReplEndpoint ep;
    const std::size_t colon = entry.rfind(':');
    std::string_view port_text = entry;
    if (colon != std::string_view::npos) {
      ep.host.assign(entry.substr(0, colon));
      port_text = entry.substr(colon + 1);
    }
    if (ep.host.empty()) ep.host = "127.0.0.1";
    std::uint64_t port = 0;
    if (!parse_u64(port_text, port) || port == 0 || port > 0xFFFF) continue;
    ep.port = static_cast<std::uint16_t>(port);
    out.push_back(std::move(ep));
  }
  return out;
}

}  // namespace nws

// The simulated UCSD CSE fleet (DESIGN.md §5).
//
// Six host configurations reproduce the load classes of the paper's
// experimental subjects:
//   thing1, thing2  — graduate-student interactive workstations
//   conundrum       — workstation with a `nice 19` background soaker
//   beowulf         — departmental compute server (batch + interrupt load)
//   gremlin         — lightly used departmental server
//   kongo           — server occupied by a long-running full-priority job
#pragma once

#include <array>
#include <memory>
#include <string>

#include "sim/host.hpp"

namespace nws {

enum class UcsdHost {
  kThing2,
  kThing1,
  kConundrum,
  kBeowulf,
  kGremlin,
  kKongo,
};

/// All hosts in the paper's table order.
[[nodiscard]] const std::array<UcsdHost, 6>& all_ucsd_hosts();

[[nodiscard]] std::string host_name(UcsdHost host);

/// Builds the host with its workload attached.  The same (host, seed) pair
/// always yields an identical simulation.
[[nodiscard]] std::unique_ptr<sim::Host> make_ucsd_host(UcsdHost host,
                                                        std::uint64_t seed);

}  // namespace nws

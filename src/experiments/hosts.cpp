#include "experiments/hosts.hpp"

#include <stdexcept>

#include "sim/workload.hpp"

namespace nws {

namespace {

using sim::BatchArrivals;
using sim::BatchArrivalsConfig;
using sim::DiurnalProfile;
using sim::Host;
using sim::HostConfig;
using sim::InteractiveSession;
using sim::InteractiveSessionConfig;
using sim::PersistentProcess;
using sim::PersistentProcessConfig;

void add_interactive_users(Host& host, int count, double mean_think,
                           double burst_alpha, Rng& rng) {
  for (int i = 0; i < count; ++i) {
    InteractiveSessionConfig cfg;
    cfg.name = "user" + std::to_string(i);
    cfg.mean_think = mean_think;
    cfg.burst_alpha = burst_alpha;
    // Presence layer (engaged ~25 min / away ~50 min, heavy-tailed): the
    // hour-scale ON/OFF behind the slow ACF decay of Figure 2.
    cfg.presence_alpha = 1.8;
    cfg.engaged_mean = 1800.0;
    cfg.away_mean = 1800.0;
    cfg.diurnal = DiurnalProfile{.amplitude = 0.35, .peak_hour = 15.0};
    host.add_workload(std::make_unique<InteractiveSession>(cfg, rng.fork()));
  }
}

}  // namespace

const std::array<UcsdHost, 6>& all_ucsd_hosts() {
  static const std::array<UcsdHost, 6> hosts = {
      UcsdHost::kThing2,  UcsdHost::kThing1,  UcsdHost::kConundrum,
      UcsdHost::kBeowulf, UcsdHost::kGremlin, UcsdHost::kKongo,
  };
  return hosts;
}

std::string host_name(UcsdHost host) {
  switch (host) {
    case UcsdHost::kThing2:
      return "thing2";
    case UcsdHost::kThing1:
      return "thing1";
    case UcsdHost::kConundrum:
      return "conundrum";
    case UcsdHost::kBeowulf:
      return "beowulf";
    case UcsdHost::kGremlin:
      return "gremlin";
    case UcsdHost::kKongo:
      return "kongo";
  }
  throw std::invalid_argument("unknown host");
}

std::unique_ptr<sim::Host> make_ucsd_host(UcsdHost host, std::uint64_t seed) {
  HostConfig hc;
  hc.name = host_name(host);
  Rng rng(seed ^ (static_cast<std::uint64_t>(host) << 32));

  switch (host) {
    case UcsdHost::kThing2: {
      // The busier workstation: several active users with heavy bursts.
      // Burst tail index alpha targets the paper's Hurst band via the
      // ON/OFF aggregation law H ~ (3 - alpha) / 2.
      auto h = std::make_unique<Host>(hc, rng());
      add_interactive_users(*h, 4, /*mean_think=*/10.0, /*alpha=*/1.5, rng);
      return h;
    }
    case UcsdHost::kThing1: {
      auto h = std::make_unique<Host>(hc, rng());
      add_interactive_users(*h, 3, /*mean_think=*/12.0, /*alpha=*/1.6, rng);
      return h;
    }
    case UcsdHost::kConundrum: {
      // Mostly idle workstation with a nice-19 cycle soaker: the cheap
      // methods see a loaded machine, a full-priority process does not.
      auto h = std::make_unique<Host>(hc, rng());
      PersistentProcessConfig soaker;
      soaker.name = "soaker";
      soaker.nice = 19;
      h->add_workload(std::make_unique<PersistentProcess>(soaker, rng.fork()));
      add_interactive_users(*h, 2, /*mean_think=*/20.0, /*alpha=*/1.3, rng);
      return h;
    }
    case UcsdHost::kBeowulf: {
      // Departmental server: batch jobs with partial CPU duty plus kernel
      // interrupt load (it once served as a network gateway).
      hc.interrupt_load = 0.04;
      auto h = std::make_unique<Host>(hc, rng());
      BatchArrivalsConfig batch;
      batch.jobs_per_hour = 8.0;
      batch.duration_mu = 4.2;   // median ~67 s
      batch.duration_sigma = 1.0;
      batch.cpu_duty = 0.55;
      batch.run_chunk = 0.8;
      batch.diurnal = DiurnalProfile{.amplitude = 0.5, .peak_hour = 14.0};
      h->add_workload(std::make_unique<BatchArrivals>(batch, rng.fork()));
      add_interactive_users(*h, 1, /*mean_think=*/120.0, /*alpha=*/1.4, rng);
      return h;
    }
    case UcsdHost::kGremlin: {
      auto h = std::make_unique<Host>(hc, rng());
      BatchArrivalsConfig batch;
      batch.jobs_per_hour = 3.0;
      batch.duration_mu = 4.0;   // median ~55 s
      batch.duration_sigma = 1.0;
      batch.cpu_duty = 0.5;
      batch.run_chunk = 0.8;
      batch.diurnal = DiurnalProfile{.amplitude = 0.5, .peak_hour = 14.0};
      h->add_workload(std::make_unique<BatchArrivals>(batch, rng.fork()));
      return h;
    }
    case UcsdHost::kKongo: {
      // A long-running full-priority compute job is resident; its p_estcpu
      // has saturated, so a freshly started 1.5 s probe pre-empts it while
      // a 10 s test process ends up sharing — the hybrid sensor's failure
      // case in the paper.
      auto h = std::make_unique<Host>(hc, rng());
      PersistentProcessConfig hog;
      hog.name = "longjob";
      hog.nice = 0;
      h->add_workload(std::make_unique<PersistentProcess>(hog, rng.fork()));
      return h;
    }
  }
  throw std::invalid_argument("unknown host");
}

}  // namespace nws

// Parallel fleet execution: one simulation task per host.
//
// Each (host, seed) simulation is fully deterministic and independent —
// make_ucsd_host() derives every host's RNG stream from the (host, seed)
// pair — so the fleet fans out across a thread pool with no shared
// mutable state.  Results are written into a host-indexed vector, which
// makes the output identical to the serial loop regardless of completion
// order or job count; a test pins this byte-for-byte.
//
// Job count: explicit `jobs` argument, else the NWSCPU_JOBS environment
// variable, else hardware_concurrency.  jobs == 1 runs inline (serial
// fallback, no threads spawned).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "experiments/hosts.hpp"
#include "experiments/runner.hpp"

namespace nws {

/// Invoked (serialised, from worker threads) as each host's simulation
/// completes: the host and the wall-clock seconds its simulation took.
using FleetProgress = std::function<void(UcsdHost, double)>;

/// Simulates every host in `hosts` under `config` with the same protocol
/// and seed derivation as the serial loop (make_ucsd_host(h, seed) per
/// host), one pool task per host.  The returned traces are in `hosts`
/// order and identical to a serial run for the same seed.
[[nodiscard]] std::vector<HostTrace> run_fleet_parallel(
    const std::vector<UcsdHost>& hosts, std::uint64_t seed,
    const RunnerConfig& config, std::size_t jobs = 0,
    const FleetProgress& progress = {});

}  // namespace nws

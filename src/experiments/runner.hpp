// Experiment runner: drives one simulated host through the paper's
// measurement protocol and records everything the analysis needs.
//
// Protocol (paper, Sections 2-3):
//  * every `measure_period` (10 s): read the load-average and vmstat
//    sensors and produce the hybrid measurement;
//  * once per `probe_period` (60 s): run the 1.5 s hybrid probe process
//    (this consumes simulated CPU — the hybrid's 2.5% overhead);
//  * every `test_period` (5 min): run the 10 s ground-truth test process in
//    the background while measurement continues;
//  * every `agg_test_period` (60 min): run the 5-minute test process used
//    for the aggregated (medium-term) evaluation — intrusive enough to be
//    visible in the traces, as the paper notes about its Figure 4.
#pragma once

#include <optional>
#include <vector>

#include "sensors/hybrid_sensor.hpp"
#include "sim/host.hpp"
#include "tsa/series.hpp"

namespace nws {

struct RunnerConfig {
  double duration = 24.0 * 3600.0;  ///< recorded experiment length (s)
  double warmup = 600.0;            ///< pre-recording settle time (s)
  double measure_period = 10.0;
  double probe_period = 60.0;
  double probe_duration = 1.5;
  bool hybrid_apply_bias = true;

  bool run_tests = true;
  double test_period = 300.0;
  double test_duration = 10.0;
  /// Offset of the first test into the recorded window; keeps test starts
  /// between measurement epochs.
  double test_offset = 15.0;

  bool run_agg_tests = false;
  double agg_test_period = 3600.0;
  double agg_test_duration = 300.0;
};

/// One ground-truth observation: what a full-priority process actually got.
struct TestObservation {
  double start = 0.0;         ///< wall-clock start time (s)
  double availability = 0.0;  ///< cpu_time / wall_time
};

/// Everything recorded from one host run.
struct HostTrace {
  TimeSeries load_series;    ///< Equation 1 readings, one per epoch
  TimeSeries vmstat_series;  ///< Equation 2 readings
  TimeSeries hybrid_series;  ///< NWS hybrid readings
  std::vector<TestObservation> tests;      ///< short (10 s) test processes
  std::vector<TestObservation> agg_tests;  ///< long (5 min) test processes
};

/// Runs the full protocol on `host`.  The host must be freshly constructed
/// (time zero); the runner performs the warmup itself.
[[nodiscard]] HostTrace run_experiment(sim::Host& host,
                                       const RunnerConfig& config);

}  // namespace nws

#include "experiments/fleet.hpp"

#include <chrono>
#include <mutex>

#include "util/thread_pool.hpp"

namespace nws {

std::vector<HostTrace> run_fleet_parallel(const std::vector<UcsdHost>& hosts,
                                          std::uint64_t seed,
                                          const RunnerConfig& config,
                                          std::size_t jobs,
                                          const FleetProgress& progress) {
  std::vector<HostTrace> traces(hosts.size());
  std::mutex progress_mu;
  parallel_for(
      hosts.size(),
      [&](std::size_t i) {
        const auto start = std::chrono::steady_clock::now();
        auto host = make_ucsd_host(hosts[i], seed);
        traces[i] = run_experiment(*host, config);
        if (progress) {
          const double wall =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
          std::lock_guard<std::mutex> lock(progress_mu);
          progress(hosts[i], wall);
        }
      },
      jobs);
  return traces;
}

}  // namespace nws

#include "experiments/runner.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "sensors/sim_sensors.hpp"

namespace nws {

namespace {

/// A test process running in the background of the measurement loop.
struct ActiveTest {
  sim::TimedRun run;
  bool aggregated = false;
};

}  // namespace

HostTrace run_experiment(sim::Host& host, const RunnerConfig& cfg) {
  assert(cfg.duration > 0.0 && cfg.measure_period > 0.0);

  LoadAvgSensor load_sensor(host);
  VmstatSensor vmstat_sensor(host);
  HybridSensor hybrid({.probe_period = cfg.probe_period,
                       .probe_duration = cfg.probe_duration,
                       .apply_bias = cfg.hybrid_apply_bias});

  // Warm up: let workloads reach steady state and prime the sensors so the
  // first recorded vmstat interval is a real delta.
  host.run_until(cfg.warmup);
  (void)vmstat_sensor.measure();

  const double t0 = host.now();
  const double end = t0 + cfg.duration;
  const std::string& hn = host.config().name;

  HostTrace trace{
      TimeSeries(hn + "/load", t0, cfg.measure_period),
      TimeSeries(hn + "/vmstat", t0, cfg.measure_period),
      TimeSeries(hn + "/hybrid", t0, cfg.measure_period),
      {},
      {}};
  const auto expected =
      static_cast<std::size_t>(cfg.duration / cfg.measure_period) + 1;
  trace.load_series.reserve(expected);
  trace.vmstat_series.reserve(expected);
  trace.hybrid_series.reserve(expected);

  double next_measure = t0;
  double next_test = cfg.run_tests
                         ? t0 + cfg.test_offset
                         : std::numeric_limits<double>::infinity();
  double next_agg_test = cfg.run_agg_tests
                             ? t0 + cfg.agg_test_period
                             : std::numeric_limits<double>::infinity();
  std::vector<ActiveTest> active;

  const auto harvest_finished = [&] {
    for (auto it = active.begin(); it != active.end();) {
      if (!host.finished(it->run)) {
        ++it;
        continue;
      }
      TestObservation obs;
      obs.start = sim::ticks_to_seconds(it->run.start);
      obs.availability = host.cpu_fraction(it->run);
      (it->aggregated ? trace.agg_tests : trace.tests).push_back(obs);
      host.scheduler().reap_one(it->run.pid);
      it = active.erase(it);
    }
  };

  while (true) {
    const double next_event = std::min({next_measure, next_test,
                                        next_agg_test});
    if (next_event > end) break;
    host.run_until(next_event);
    harvest_finished();

    if (next_event == next_measure) {
      double load_reading = load_sensor.measure();
      double vmstat_reading = vmstat_sensor.measure();
      if (hybrid.probe_due(host.now())) {
        // The probe consumes real simulated CPU inside this epoch.
        const double probe_avail = host.run_timed_process(
            "nws_probe", cfg.probe_duration, /*nice=*/0);
        harvest_finished();
        hybrid.probe_result(host.now(), probe_avail, load_reading,
                            vmstat_reading);
      }
      trace.load_series.push_back(load_reading);
      trace.vmstat_series.push_back(vmstat_reading);
      trace.hybrid_series.push_back(hybrid.measure(load_reading,
                                                   vmstat_reading));
      next_measure += cfg.measure_period;
    } else if (next_event == next_test) {
      active.push_back({host.start_timed_process("test_proc",
                                                 cfg.test_duration),
                        /*aggregated=*/false});
      next_test += cfg.test_period;
    } else {
      active.push_back({host.start_timed_process("agg_test_proc",
                                                 cfg.agg_test_duration),
                        /*aggregated=*/true});
      next_agg_test += cfg.agg_test_period;
    }
  }

  // Let any still-running test finish so its observation is not lost.
  for (const ActiveTest& t : active) {
    host.run_until(sim::ticks_to_seconds(t.run.end));
  }
  harvest_finished();
  return trace;
}

}  // namespace nws

// Error analysis: the quantities of the paper's Equations 3-5, computed
// from a HostTrace, plus the aggregated (Section 3.2) variants.
//
//   measurement error   (Eq. 3): |measurement just before a test - what the
//                                test process observed|
//   true forecast error (Eq. 4): |forecast made for the test's time frame -
//                                what the test process observed|
//   prediction error    (Eq. 5): |forecast - next measurement|
#pragma once

#include <cstddef>
#include <span>

#include "experiments/runner.hpp"
#include "forecast/forecaster.hpp"
#include "tsa/autocorrelation.hpp"
#include "tsa/periodogram.hpp"
#include "tsa/series.hpp"

namespace nws {

/// One value per measurement method (the columns of the paper's tables).
struct MethodTriple {
  double load_average = 0.0;
  double vmstat = 0.0;
  double hybrid = 0.0;
};

/// Mean absolute measurement error (Table 1).  Tests whose preceding
/// measurement is missing (before the first epoch) are skipped.
[[nodiscard]] MethodTriple measurement_error(const HostTrace& trace);

/// Mean true forecasting error (Table 2): one-step-ahead NWS forecasts
/// evaluated against the test-process observations.  Uses a fresh canonical
/// NWS adaptive forecaster per series.
[[nodiscard]] MethodTriple true_forecast_error(const HostTrace& trace);

/// Mean one-step-ahead prediction error (Table 3): NWS forecast vs the next
/// measurement, averaged over the whole series.
[[nodiscard]] MethodTriple prediction_error(const HostTrace& trace);

/// Population variance of each measurement series (Table 4, "orig.").
[[nodiscard]] MethodTriple series_variance(const HostTrace& trace);

/// Population variance of each m-aggregated series (Table 4, "300s" with
/// m = 30 at a 10 s period).
[[nodiscard]] MethodTriple aggregated_variance(const HostTrace& trace,
                                               std::size_t m);

/// Mean one-step-ahead prediction error of the m-aggregated series
/// (Table 5).
[[nodiscard]] MethodTriple aggregated_prediction_error(const HostTrace& trace,
                                                       std::size_t m);

/// Mean true forecasting error of the aggregated series against the long
/// (5-minute) test processes (Table 6).  `m` must equal
/// agg_test_duration / measure_period (30 for the paper protocol).
[[nodiscard]] MethodTriple aggregated_true_error(const HostTrace& trace,
                                                 std::size_t m);

/// Helper shared with the benches: mean absolute one-step-ahead error of a
/// fresh canonical NWS forecaster over `values` (Equation 5 for any series).
[[nodiscard]] double nws_prediction_mae(std::span<const double> values);

/// Every self-similarity instrument the paper's Section 3 analysis uses,
/// computed in one call over one series: the three Hurst estimators (R/S
/// pox regression, aggregated variance, log-periodogram/GPH) plus the ACF
/// decay summary.  All four run on the FFT-backed spectral kernels, so the
/// whole bundle is O(n log n) — cheap enough to evaluate per host in the
/// figure pipeline (Figure 2/3, Table 4).
struct SelfSimilaritySummary {
  HurstEstimate rs;      ///< R/S pox regression (Figure 3 / Table 4)
  HurstEstimate aggvar;  ///< aggregated-variance cross-check
  HurstEstimate gph;     ///< log-periodogram (GPH) cross-check
  AcfDecay acf;          ///< Figure 2 decay summary
};

[[nodiscard]] SelfSimilaritySummary self_similarity(
    std::span<const double> values, std::size_t acf_lags = 360,
    double acf_threshold = 0.2);

}  // namespace nws

// Fleet configuration files: user-defined simulated hosts.
//
// The six built-in UCSD hosts (hosts.hpp) reproduce the paper; downstream
// users studying their own environment describe hosts in a small INI-style
// text format instead of recompiling:
//
//     # comment
//     [host buildbox]
//     interrupt_load      = 0.02
//     users               = 3        # interactive ON/OFF sessions
//     user.mean_think     = 20
//     user.burst_alpha    = 1.5
//     user.diurnal_amplitude = 0.35
//     batch               = true     # Poisson batch job stream
//     batch.jobs_per_hour = 6
//     batch.duration_mu   = 4.2
//     batch.duration_sigma= 1.0
//     batch.cpu_duty      = 0.6
//     soaker              = true     # nice-19 background cycle soaker
//     soaker.nice         = 19
//     hog                 = true     # resident full-priority job
//     hog.duty            = 1.0
//     daemon.period       = 300      # cron-style periodic daemon
//     daemon.burst        = 2
//
// Unknown keys, malformed values and duplicate host names are hard errors
// (with line numbers) — a silently ignored typo in an experiment spec is
// worse than a failure.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/host.hpp"

namespace nws {

struct HostSpec {
  std::string name;
  double interrupt_load = 0.0;

  int users = 0;
  double user_mean_think = 30.0;
  double user_burst_alpha = 1.5;
  double user_diurnal_amplitude = 0.35;

  bool batch = false;
  double batch_jobs_per_hour = 4.0;
  double batch_duration_mu = 4.2;
  double batch_duration_sigma = 1.0;
  double batch_cpu_duty = 0.6;

  bool soaker = false;
  int soaker_nice = 19;

  bool hog = false;
  double hog_duty = 1.0;

  std::optional<double> daemon_period;
  double daemon_burst = 1.0;
};

/// Parses a fleet file.  Throws std::runtime_error with "line N: ..." on
/// any syntactic or semantic problem.
[[nodiscard]] std::vector<HostSpec> parse_fleet_config(std::istream& in);
[[nodiscard]] std::vector<HostSpec> parse_fleet_config(
    const std::filesystem::path& path);

/// Builds a simulated host (with all configured workloads attached) from a
/// spec.  Deterministic in (spec, seed).
[[nodiscard]] std::unique_ptr<sim::Host> build_host(const HostSpec& spec,
                                                    std::uint64_t seed);

}  // namespace nws

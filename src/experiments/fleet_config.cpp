#include "experiments/fleet_config.hpp"

#include <charconv>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "sim/extra_workloads.hpp"
#include "sim/workload.hpp"

namespace nws {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& message) {
  throw std::runtime_error("fleet config line " + std::to_string(line_no) +
                           ": " + message);
}

std::string trim(std::string_view s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string_view::npos) return {};
  const auto end = s.find_last_not_of(" \t\r");
  return std::string(s.substr(begin, end - begin + 1));
}

double parse_number(std::size_t line_no, const std::string& value) {
  double out = 0.0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    fail(line_no, "expected a number, got '" + value + "'");
  }
  return out;
}

bool parse_bool(std::size_t line_no, const std::string& value) {
  if (value == "true" || value == "1" || value == "yes") return true;
  if (value == "false" || value == "0" || value == "no") return false;
  fail(line_no, "expected a boolean, got '" + value + "'");
}

void apply_key(std::size_t line_no, HostSpec& spec, const std::string& key,
               const std::string& value) {
  const auto num = [&] { return parse_number(line_no, value); };
  const auto flag = [&] { return parse_bool(line_no, value); };
  if (key == "interrupt_load") {
    spec.interrupt_load = num();
    if (spec.interrupt_load < 0.0 || spec.interrupt_load >= 1.0) {
      fail(line_no, "interrupt_load must be in [0, 1)");
    }
  } else if (key == "users") {
    spec.users = static_cast<int>(num());
    if (spec.users < 0 || spec.users > 64) {
      fail(line_no, "users must be in [0, 64]");
    }
  } else if (key == "user.mean_think") {
    spec.user_mean_think = num();
    if (spec.user_mean_think <= 0.0) fail(line_no, "mean_think must be > 0");
  } else if (key == "user.burst_alpha") {
    spec.user_burst_alpha = num();
    if (spec.user_burst_alpha <= 0.0) fail(line_no, "burst_alpha must be > 0");
  } else if (key == "user.diurnal_amplitude") {
    spec.user_diurnal_amplitude = num();
    if (spec.user_diurnal_amplitude < 0.0 ||
        spec.user_diurnal_amplitude >= 1.0) {
      fail(line_no, "diurnal_amplitude must be in [0, 1)");
    }
  } else if (key == "batch") {
    spec.batch = flag();
  } else if (key == "batch.jobs_per_hour") {
    spec.batch_jobs_per_hour = num();
    if (spec.batch_jobs_per_hour <= 0.0) {
      fail(line_no, "jobs_per_hour must be > 0");
    }
  } else if (key == "batch.duration_mu") {
    spec.batch_duration_mu = num();
  } else if (key == "batch.duration_sigma") {
    spec.batch_duration_sigma = num();
    if (spec.batch_duration_sigma < 0.0) {
      fail(line_no, "duration_sigma must be >= 0");
    }
  } else if (key == "batch.cpu_duty") {
    spec.batch_cpu_duty = num();
    if (spec.batch_cpu_duty <= 0.0 || spec.batch_cpu_duty > 1.0) {
      fail(line_no, "cpu_duty must be in (0, 1]");
    }
  } else if (key == "soaker") {
    spec.soaker = flag();
  } else if (key == "soaker.nice") {
    spec.soaker_nice = static_cast<int>(num());
    if (spec.soaker_nice < 0 || spec.soaker_nice > 19) {
      fail(line_no, "soaker.nice must be in [0, 19]");
    }
  } else if (key == "hog") {
    spec.hog = flag();
  } else if (key == "hog.duty") {
    spec.hog_duty = num();
    if (spec.hog_duty <= 0.0 || spec.hog_duty > 1.0) {
      fail(line_no, "hog.duty must be in (0, 1]");
    }
  } else if (key == "daemon.period") {
    spec.daemon_period = num();
    if (*spec.daemon_period <= 0.0) fail(line_no, "daemon.period must be > 0");
  } else if (key == "daemon.burst") {
    spec.daemon_burst = num();
    if (spec.daemon_burst <= 0.0) fail(line_no, "daemon.burst must be > 0");
  } else {
    fail(line_no, "unknown key '" + key + "'");
  }
}

}  // namespace

std::vector<HostSpec> parse_fleet_config(std::istream& in) {
  std::vector<HostSpec> specs;
  std::set<std::string> names;
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    // Strip comments, then whitespace.
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::string line = trim(raw);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') fail(line_no, "unterminated section header");
      std::istringstream header(line.substr(1, line.size() - 2));
      std::string kind, name, extra;
      header >> kind >> name;
      if (kind != "host" || name.empty() || (header >> extra)) {
        fail(line_no, "expected [host <name>]");
      }
      if (!names.insert(name).second) {
        fail(line_no, "duplicate host '" + name + "'");
      }
      HostSpec spec;
      spec.name = name;
      specs.push_back(spec);
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos) fail(line_no, "expected key = value");
    if (specs.empty()) fail(line_no, "key before any [host ...] section");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty() || value.empty()) fail(line_no, "empty key or value");
    apply_key(line_no, specs.back(), key, value);
  }
  // Cross-key validation (order-independent).
  for (const HostSpec& spec : specs) {
    if (spec.daemon_period && spec.daemon_burst >= *spec.daemon_period) {
      throw std::runtime_error("fleet config host '" + spec.name +
                               "': daemon.burst must be < daemon.period");
    }
  }
  return specs;
}

std::vector<HostSpec> parse_fleet_config(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open fleet config " + path.string());
  }
  return parse_fleet_config(in);
}

std::unique_ptr<sim::Host> build_host(const HostSpec& spec,
                                      std::uint64_t seed) {
  sim::HostConfig hc;
  hc.name = spec.name;
  hc.interrupt_load = spec.interrupt_load;
  Rng rng(seed ^ std::hash<std::string>{}(spec.name));
  auto host = std::make_unique<sim::Host>(hc, rng());

  for (int i = 0; i < spec.users; ++i) {
    sim::InteractiveSessionConfig user;
    user.name = "user" + std::to_string(i);
    user.mean_think = spec.user_mean_think;
    user.burst_alpha = spec.user_burst_alpha;
    user.diurnal = {.amplitude = spec.user_diurnal_amplitude,
                    .peak_hour = 15.0};
    host->add_workload(
        std::make_unique<sim::InteractiveSession>(user, rng.fork()));
  }
  if (spec.batch) {
    sim::BatchArrivalsConfig batch;
    batch.jobs_per_hour = spec.batch_jobs_per_hour;
    batch.duration_mu = spec.batch_duration_mu;
    batch.duration_sigma = spec.batch_duration_sigma;
    batch.cpu_duty = spec.batch_cpu_duty;
    host->add_workload(
        std::make_unique<sim::BatchArrivals>(batch, rng.fork()));
  }
  if (spec.soaker) {
    sim::PersistentProcessConfig soaker;
    soaker.name = "soaker";
    soaker.nice = spec.soaker_nice;
    host->add_workload(
        std::make_unique<sim::PersistentProcess>(soaker, rng.fork()));
  }
  if (spec.hog) {
    sim::PersistentProcessConfig hog;
    hog.name = "hog";
    hog.duty = spec.hog_duty;
    host->add_workload(
        std::make_unique<sim::PersistentProcess>(hog, rng.fork()));
  }
  if (spec.daemon_period) {
    sim::PeriodicDaemonConfig daemon;
    daemon.period = *spec.daemon_period;
    daemon.burst = spec.daemon_burst;
    host->add_workload(std::make_unique<sim::PeriodicDaemon>(daemon));
  }
  return host;
}

}  // namespace nws

#include "experiments/analysis.hpp"

#include <cmath>
#include <vector>

#include "forecast/battery.hpp"
#include "forecast/evaluate.hpp"
#include "tsa/aggregate.hpp"
#include "util/stats.hpp"

namespace nws {

namespace {

/// Mean |series[i] - obs| where i indexes the measurement taken most
/// immediately before each test start (Equation 3).
double measurement_error_one(const TimeSeries& series,
                             std::span<const TestObservation> tests) {
  RunningStats err;
  for (const TestObservation& t : tests) {
    const std::size_t i = series.index_at_or_before(t.start);
    if (i == TimeSeries::npos) continue;
    err.add(std::abs(series[i] - t.availability));
  }
  return err.mean();
}

/// Mean |forecast for the test frame - obs| (Equation 4).  The forecast for
/// the frame in which a test starting after epoch i runs is the prediction
/// of measurement i+1, i.e. the forecast generated after observing epoch i.
double true_error_one(const TimeSeries& series,
                      std::span<const TestObservation> tests) {
  const auto adaptive = make_nws_forecaster();
  const ForecastEvaluation ev = evaluate_forecaster(*adaptive, series);
  RunningStats err;
  for (const TestObservation& t : tests) {
    const std::size_t i = series.index_at_or_before(t.start);
    if (i == TimeSeries::npos || i + 1 >= ev.forecasts.size()) continue;
    err.add(std::abs(ev.forecasts[i + 1] - t.availability));
  }
  return err.mean();
}

double prediction_error_one(std::span<const double> values) {
  const auto adaptive = make_nws_forecaster();
  return evaluate_forecaster(*adaptive, values).mae;
}

/// Aggregated Equation 4: forecast of the 5-minute-average block against
/// the 5-minute test-process observation in that block.
double aggregated_true_error_one(const TimeSeries& series,
                                 std::span<const TestObservation> tests,
                                 std::size_t m) {
  const TimeSeries agg = aggregate_series(series, m);
  const auto adaptive = make_nws_forecaster();
  const ForecastEvaluation ev = evaluate_forecaster(*adaptive, agg);
  RunningStats err;
  for (const TestObservation& t : tests) {
    // Block containing the test start.
    const double offset = t.start - agg.start();
    if (offset < 0.0) continue;
    const auto j = static_cast<std::size_t>(offset / agg.period());
    if (j >= ev.forecasts.size()) continue;
    err.add(std::abs(ev.forecasts[j] - t.availability));
  }
  return err.mean();
}

template <typename Fn>
MethodTriple per_method(const HostTrace& trace, Fn&& fn) {
  MethodTriple out;
  out.load_average = fn(trace.load_series);
  out.vmstat = fn(trace.vmstat_series);
  out.hybrid = fn(trace.hybrid_series);
  return out;
}

}  // namespace

MethodTriple measurement_error(const HostTrace& trace) {
  return per_method(trace, [&](const TimeSeries& s) {
    return measurement_error_one(s, trace.tests);
  });
}

MethodTriple true_forecast_error(const HostTrace& trace) {
  return per_method(trace, [&](const TimeSeries& s) {
    return true_error_one(s, trace.tests);
  });
}

MethodTriple prediction_error(const HostTrace& trace) {
  return per_method(trace, [&](const TimeSeries& s) {
    return prediction_error_one(s.values());
  });
}

MethodTriple series_variance(const HostTrace& trace) {
  return per_method(trace,
                    [](const TimeSeries& s) { return variance(s.values()); });
}

MethodTriple aggregated_variance(const HostTrace& trace, std::size_t m) {
  return per_method(trace, [m](const TimeSeries& s) {
    return variance(aggregate_series(s.values(), m));
  });
}

MethodTriple aggregated_prediction_error(const HostTrace& trace,
                                         std::size_t m) {
  return per_method(trace, [m](const TimeSeries& s) {
    return prediction_error_one(aggregate_series(s.values(), m));
  });
}

MethodTriple aggregated_true_error(const HostTrace& trace, std::size_t m) {
  return per_method(trace, [&, m](const TimeSeries& s) {
    return aggregated_true_error_one(s, trace.agg_tests, m);
  });
}

double nws_prediction_mae(std::span<const double> values) {
  return prediction_error_one(values);
}

SelfSimilaritySummary self_similarity(std::span<const double> values,
                                      std::size_t acf_lags,
                                      double acf_threshold) {
  SelfSimilaritySummary out;
  out.rs = estimate_hurst_rs(values);
  out.aggvar = estimate_hurst_aggvar(values);
  out.gph = estimate_hurst_periodogram(values);
  out.acf = acf_decay(values, acf_lags, acf_threshold);
  return out;
}

}  // namespace nws

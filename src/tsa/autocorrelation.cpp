#include "tsa/autocorrelation.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace nws {

namespace {

/// A (near-)constant series has an undefined ACF; we define it as 0.  The
/// threshold is relative to the series magnitude so rounding residue from
/// the mean subtraction is not mistaken for variance.
bool effectively_constant(std::span<const double> xs, double m,
                          double denom) noexcept {
  const double scale = std::max(std::abs(m), 1e-300);
  return denom <= 1e-20 * scale * scale * static_cast<double>(xs.size());
}

}  // namespace

double autocorrelation(std::span<const double> xs, std::size_t lag) noexcept {
  const std::size_t n = xs.size();
  if (n < 2 || lag >= n) return 0.0;
  const double m = mean(xs);
  double denom = 0.0;
  for (double x : xs) denom += (x - m) * (x - m);
  if (denom <= 0.0 || effectively_constant(xs, m, denom)) return 0.0;
  double num = 0.0;
  for (std::size_t t = 0; t + lag < n; ++t) {
    num += (xs[t] - m) * (xs[t + lag] - m);
  }
  return num / denom;
}

std::vector<double> autocorrelations(std::span<const double> xs,
                                     std::size_t max_lag) {
  const std::size_t n = xs.size();
  std::vector<double> out;
  if (n < 2) return out;
  const std::size_t lags = std::min(max_lag, n - 1);
  out.reserve(lags + 1);
  const double m = mean(xs);
  double denom = 0.0;
  for (double x : xs) denom += (x - m) * (x - m);
  if (denom <= 0.0 || effectively_constant(xs, m, denom)) {
    out.assign(lags + 1, 0.0);
    return out;
  }
  for (std::size_t k = 0; k <= lags; ++k) {
    double num = 0.0;
    for (std::size_t t = 0; t + k < n; ++t) {
      num += (xs[t] - m) * (xs[t + k] - m);
    }
    out.push_back(num / denom);
  }
  return out;
}

AcfDecay acf_decay(std::span<const double> xs, std::size_t max_lag,
                   double threshold) {
  AcfDecay d;
  const auto acf = autocorrelations(xs, max_lag);
  d.lags_computed = acf.size();
  d.first_below = acf.size();
  for (std::size_t k = 0; k < acf.size(); ++k) {
    if (acf[k] < threshold) {
      d.first_below = k;
      break;
    }
  }
  d.value_at_last = acf.empty() ? 0.0 : acf.back();
  return d;
}

}  // namespace nws

#include "tsa/autocorrelation.hpp"

#include <algorithm>
#include <cmath>
#include <complex>

#include "util/fft.hpp"
#include "util/stats.hpp"

namespace nws {

namespace {

/// A (near-)constant series has an undefined ACF; we define it as 0.  The
/// threshold is relative to the series magnitude so rounding residue from
/// the mean subtraction is not mistaken for variance.
bool effectively_constant(std::span<const double> xs, double m,
                          double denom) noexcept {
  const double scale = std::max(std::abs(m), 1e-300);
  return denom <= 1e-20 * scale * scale * static_cast<double>(xs.size());
}

/// Below this many multiply-adds the direct sum beats the transform setup.
constexpr std::size_t kDirectSumCutoff = 1 << 15;

}  // namespace

double autocorrelation(std::span<const double> xs, std::size_t lag) noexcept {
  const std::size_t n = xs.size();
  if (n < 2 || lag >= n) return 0.0;
  const double m = mean(xs);
  double denom = 0.0;
  for (double x : xs) denom += (x - m) * (x - m);
  if (denom <= 0.0 || effectively_constant(xs, m, denom)) return 0.0;
  double num = 0.0;
  for (std::size_t t = 0; t + lag < n; ++t) {
    num += (xs[t] - m) * (xs[t + lag] - m);
  }
  return num / denom;
}

std::vector<double> autocorrelations_naive(std::span<const double> xs,
                                           std::size_t max_lag) {
  const std::size_t n = xs.size();
  std::vector<double> out;
  if (n < 2) return out;
  const std::size_t lags = std::min(max_lag, n - 1);
  out.reserve(lags + 1);
  const double m = mean(xs);
  double denom = 0.0;
  for (double x : xs) denom += (x - m) * (x - m);
  if (denom <= 0.0 || effectively_constant(xs, m, denom)) {
    out.assign(lags + 1, 0.0);
    return out;
  }
  for (std::size_t k = 0; k <= lags; ++k) {
    double num = 0.0;
    for (std::size_t t = 0; t + k < n; ++t) {
      num += (xs[t] - m) * (xs[t + k] - m);
    }
    out.push_back(num / denom);
  }
  return out;
}

std::vector<double> autocorrelations(std::span<const double> xs,
                                     std::size_t max_lag) {
  const std::size_t n = xs.size();
  std::vector<double> out;
  if (n < 2) return out;
  const std::size_t lags = std::min(max_lag, n - 1);
  if (n * (lags + 1) <= kDirectSumCutoff) {
    return autocorrelations_naive(xs, max_lag);
  }
  const double m = mean(xs);
  double denom = 0.0;
  for (double x : xs) denom += (x - m) * (x - m);
  if (denom <= 0.0 || effectively_constant(xs, m, denom)) {
    out.assign(lags + 1, 0.0);
    return out;
  }
  // Wiener-Khinchin: pad the centred series to N >= n + lags so the
  // circular autocorrelation of the padded buffer equals the linear one
  // at every lag 0..lags; then acov = IFFT(|FFT(y)|^2).
  const std::size_t fft_n = next_pow2(n + lags);
  std::vector<double> centred(n);
  for (std::size_t t = 0; t < n; ++t) centred[t] = xs[t] - m;
  const auto spectrum = real_fft(centred, fft_n);
  std::vector<std::complex<double>> power(spectrum.size());
  for (std::size_t k = 0; k < spectrum.size(); ++k) {
    power[k] = {spectrum[k].real() * spectrum[k].real() +
                    spectrum[k].imag() * spectrum[k].imag(),
                0.0};
  }
  const auto acov = real_ifft(power, fft_n);
  out.resize(lags + 1);
  const double scale = 1.0 / acov[0];  // acov[0] = sum (x - m)^2; r(0) = 1
  for (std::size_t k = 0; k <= lags; ++k) out[k] = acov[k] * scale;
  return out;
}

AcfDecay acf_decay(std::span<const double> acf, double threshold) noexcept {
  AcfDecay d;
  d.lags_computed = acf.size();
  d.first_below = acf.size();
  for (std::size_t k = 0; k < acf.size(); ++k) {
    if (acf[k] < threshold) {
      d.first_below = k;
      break;
    }
  }
  d.value_at_last = acf.empty() ? 0.0 : acf.back();
  return d;
}

AcfDecay acf_decay(std::span<const double> xs, std::size_t max_lag,
                   double threshold) {
  const auto acf = autocorrelations(xs, max_lag);
  return acf_decay(acf, threshold);
}

}  // namespace nws

#include "tsa/fgn.hpp"

#include <cassert>
#include <cmath>
#include <complex>

#include "util/distributions.hpp"
#include "util/fft.hpp"

namespace nws {

namespace {

std::vector<double> generate_fgn_hosking(Rng& rng, double h, std::size_t n) {
  std::vector<double> x;
  x.reserve(n);
  if (n == 0) return x;

  // Durbin-Levinson state: phi holds the current partial regression
  // coefficients, v the innovation variance.
  std::vector<double> phi;       // current coefficients (size t)
  std::vector<double> phi_prev;  // previous iteration's coefficients
  double v = 1.0;                // gamma(0)

  x.push_back(sample_normal(rng));
  for (std::size_t t = 1; t < n; ++t) {
    // Extend the Durbin-Levinson recursion from order t-1 to order t.
    double num = fgn_autocovariance(h, t);
    for (std::size_t j = 0; j < phi.size(); ++j) {
      num -= phi[j] * fgn_autocovariance(h, t - 1 - j);
    }
    const double kappa = num / v;
    phi_prev = phi;
    phi.resize(t);
    phi[t - 1] = kappa;
    for (std::size_t j = 0; j + 1 < t; ++j) {
      phi[j] = phi_prev[j] - kappa * phi_prev[t - 2 - j];
    }
    v *= (1.0 - kappa * kappa);

    // Conditional mean given x_0..x_{t-1}; coefficients apply to the most
    // recent sample first.
    double mu = 0.0;
    for (std::size_t j = 0; j < t; ++j) {
      mu += phi[j] * x[t - 1 - j];
    }
    x.push_back(mu + std::sqrt(std::max(v, 0.0)) * sample_normal(rng));
  }
  return x;
}

std::vector<double> generate_fgn_davies_harte(Rng& rng, double h,
                                              std::size_t n) {
  const std::size_t m = next_pow2(n);
  const std::size_t big = 2 * m;  // circulant embedding size
  // First row of the circulant: gamma(0..m) mirrored back to gamma(1).
  std::vector<double> row(big);
  for (std::size_t k = 0; k <= m; ++k) row[k] = fgn_autocovariance(h, k);
  for (std::size_t k = 1; k < m; ++k) row[big - k] = row[k];
  // Eigenvalues of the circulant are the (real) DFT of its first row.
  const auto eigen = real_fft(row, big);
  // The fGn embedding is nonnegative definite for 0 < h < 1; only clamp
  // the rounding residue.  A genuinely negative eigenvalue would mean a
  // broken covariance, so fail over to the exact O(n^2) path.
  double max_eigen = 0.0;
  for (const auto& e : eigen) max_eigen = std::max(max_eigen, e.real());
  for (const auto& e : eigen) {
    if (e.real() < -1e-8 * max_eigen) return generate_fgn_hosking(rng, h, n);
  }
  // Hermitian half-spectrum of the draw: independent Gaussians scaled so
  // that E|A_k|^2 = big * lambda_k; transforming back (real_ifft carries
  // 1/big) leaves E[x_i x_j] = row[|i - j|] = gamma(|i - j|) exactly.
  std::vector<std::complex<double>> a(m + 1);
  a[0] = {std::sqrt(std::max(eigen[0].real(), 0.0) *
                    static_cast<double>(big)) *
              sample_normal(rng),
          0.0};
  for (std::size_t k = 1; k < m; ++k) {
    const double s = std::sqrt(std::max(eigen[k].real(), 0.0) *
                               static_cast<double>(big) * 0.5);
    const double re = s * sample_normal(rng);
    const double im = s * sample_normal(rng);
    a[k] = {re, im};
  }
  a[m] = {std::sqrt(std::max(eigen[m].real(), 0.0) *
                    static_cast<double>(big)) *
              sample_normal(rng),
          0.0};
  auto x = real_ifft(a, big);
  x.resize(n);
  return x;
}

}  // namespace

double fgn_autocovariance(double h, std::size_t k) noexcept {
  if (k == 0) return 1.0;
  const double kd = static_cast<double>(k);
  const double two_h = 2.0 * h;
  return 0.5 * (std::pow(kd + 1.0, two_h) - 2.0 * std::pow(kd, two_h) +
                std::pow(kd - 1.0, two_h));
}

std::vector<double> generate_fgn(Rng& rng, double h, std::size_t n,
                                 FgnMethod method) {
  assert(h > 0.0 && h < 1.0);
  if (n == 0) return {};
  switch (method) {
    case FgnMethod::kHosking:
      return generate_fgn_hosking(rng, h, n);
    case FgnMethod::kDaviesHarte:
      break;
  }
  return generate_fgn_davies_harte(rng, h, n);
}

std::vector<double> generate_ar1(Rng& rng, double phi, std::size_t n) {
  std::vector<double> x;
  x.reserve(n);
  double prev = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    prev = phi * prev + sample_normal(rng);
    x.push_back(prev);
  }
  return x;
}

}  // namespace nws

#include "tsa/fgn.hpp"

#include <cassert>
#include <cmath>

#include "util/distributions.hpp"

namespace nws {

double fgn_autocovariance(double h, std::size_t k) noexcept {
  if (k == 0) return 1.0;
  const double kd = static_cast<double>(k);
  const double two_h = 2.0 * h;
  return 0.5 * (std::pow(kd + 1.0, two_h) - 2.0 * std::pow(kd, two_h) +
                std::pow(kd - 1.0, two_h));
}

std::vector<double> generate_fgn(Rng& rng, double h, std::size_t n) {
  assert(h > 0.0 && h < 1.0);
  std::vector<double> x;
  x.reserve(n);
  if (n == 0) return x;

  // Durbin-Levinson state: phi holds the current partial regression
  // coefficients, v the innovation variance.
  std::vector<double> phi;       // current coefficients (size t)
  std::vector<double> phi_prev;  // previous iteration's coefficients
  double v = 1.0;                // gamma(0)

  x.push_back(sample_normal(rng));
  for (std::size_t t = 1; t < n; ++t) {
    // Extend the Durbin-Levinson recursion from order t-1 to order t.
    double num = fgn_autocovariance(h, t);
    for (std::size_t j = 0; j < phi.size(); ++j) {
      num -= phi[j] * fgn_autocovariance(h, t - 1 - j);
    }
    const double kappa = num / v;
    phi_prev = phi;
    phi.resize(t);
    phi[t - 1] = kappa;
    for (std::size_t j = 0; j + 1 < t; ++j) {
      phi[j] = phi_prev[j] - kappa * phi_prev[t - 2 - j];
    }
    v *= (1.0 - kappa * kappa);

    // Conditional mean given x_0..x_{t-1}; coefficients apply to the most
    // recent sample first.
    double mu = 0.0;
    for (std::size_t j = 0; j < t; ++j) {
      mu += phi[j] * x[t - 1 - j];
    }
    x.push_back(mu + std::sqrt(std::max(v, 0.0)) * sample_normal(rng));
  }
  return x;
}

std::vector<double> generate_ar1(Rng& rng, double phi, std::size_t n) {
  std::vector<double> x;
  x.reserve(n);
  double prev = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    prev = phi * prev + sample_normal(rng);
    x.push_back(prev);
  }
  return x;
}

}  // namespace nws

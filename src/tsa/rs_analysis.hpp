// R/S (rescaled adjusted range) analysis and Hurst-parameter estimation.
//
// Reproduces the paper's Figure 3 / Table 4 methodology (Mandelbrot & Taqqu
// R/S analysis with pox plots, after Leland et al.):
//
//   * the series is partitioned into non-overlapping segments of length d;
//   * for each segment, R(d)/S(d) is computed, where R is the range of the
//     mean-adjusted cumulative sums and S the segment standard deviation;
//   * plotting log10(R(d)/S(d)) against log10(d) for many d gives the "pox
//     plot"; E[R(d)/S(d)] ~ c * d^H, so a least-squares line through the
//     per-d mean log points estimates the Hurst parameter H.
//
// H in (0.5, 1.0) indicates long-range dependence / self-similarity;
// H = 0.5 is short-memory (e.g. white noise).
//
// A second, independent estimator via the variance of aggregated series
// (Var(X^(m)) ~ m^(2H-2)) is provided for cross-checking.
//
// The pox sweep runs off shared prefix sums of the centred series and its
// square, so each segment's mean and standard deviation are O(1) and the
// whole sweep is a single pass per scale instead of three.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace nws {

/// Distinct integer scales min_scale, ~min_scale*growth, ... <= max_scale
/// (log-spaced; duplicates after truncation are dropped).  growth must be
/// > 1 — otherwise only {min_scale} is returned.  Shared by the pox-plot,
/// aggregated-variance and variance-time sweeps.
[[nodiscard]] std::vector<std::size_t> geometric_scales(std::size_t min_scale,
                                                        std::size_t max_scale,
                                                        double growth);

/// R/S statistic of one segment.  Returns 0 when the segment is shorter
/// than 2 samples or has zero variance.
[[nodiscard]] double rescaled_range(std::span<const double> xs) noexcept;

/// One point of a pox plot: log10 of the segment length and log10 of the
/// R/S statistic of one segment of that length.
struct PoxPoint {
  double log10_d = 0.0;
  double log10_rs = 0.0;
};

/// Options for the pox-plot / R/S regression.
struct RsOptions {
  /// Smallest segment length considered.
  std::size_t min_segment = 8;
  /// Successive segment lengths grow by this factor (log-spaced d values).
  double growth = 1.5;
  /// Largest segment length is n / max_segment_divisor, so at least that
  /// many segments contribute at the top scale.
  std::size_t max_segment_divisor = 2;
};

/// All pox-plot points for the series.  Zero-variance segments are skipped.
[[nodiscard]] std::vector<PoxPoint> pox_points(std::span<const double> xs,
                                               const RsOptions& opt = {});

/// Result of the R/S regression.
struct HurstEstimate {
  double hurst = 0.0;       ///< regression slope (the H estimate)
  double intercept = 0.0;   ///< log10(c)
  double r_squared = 0.0;   ///< fit quality
  std::size_t num_scales = 0;  ///< distinct segment lengths used
  std::size_t num_points = 0;  ///< total pox points
};

/// The Figure 3 regression from already-computed pox points: mean
/// log10(R/S) per distinct scale, then OLS through the means.  Lets
/// callers that also plot the points run the sweep once.
[[nodiscard]] HurstEstimate estimate_hurst_from_pox(
    std::span<const PoxPoint> points);

/// Estimates H by regressing the *mean* log10(R/S) at each scale against
/// log10(d), exactly as the paper's solid line in Figure 3.
[[nodiscard]] HurstEstimate estimate_hurst_rs(std::span<const double> xs,
                                              const RsOptions& opt = {});

/// Estimates H from the variance of aggregated series:
/// slope of log10(Var(X^(m))) vs log10(m) is 2H - 2.
[[nodiscard]] HurstEstimate estimate_hurst_aggvar(std::span<const double> xs,
                                                  std::size_t min_m = 2,
                                                  double growth = 1.5);

}  // namespace nws

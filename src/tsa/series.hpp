// TimeSeries: a regularly sampled measurement history.
//
// Every analysis in the paper operates on a regular grid (availability is
// measured every 10 seconds), so the series stores a start time, a sampling
// period and the sample values.  Values are CPU-availability fractions in
// [0, 1] in most of nwscpu, but the container is generic.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace nws {

class TimeSeries {
 public:
  TimeSeries() = default;

  /// `period_seconds` is the sampling interval; must be > 0.
  TimeSeries(std::string name, double start_seconds, double period_seconds);

  /// Construct directly from values (used heavily by tests).
  TimeSeries(std::string name, double start_seconds, double period_seconds,
             std::vector<double> values);

  void push_back(double value) { values_.push_back(value); }
  void reserve(std::size_t n) { values_.reserve(n); }
  void clear() noexcept { values_.clear(); }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] double start() const noexcept { return start_; }
  [[nodiscard]] double period() const noexcept { return period_; }
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

  [[nodiscard]] double operator[](std::size_t i) const { return values_[i]; }
  [[nodiscard]] std::span<const double> values() const noexcept {
    return values_;
  }
  [[nodiscard]] std::vector<double>& mutable_values() noexcept {
    return values_;
  }

  /// Timestamp (seconds) of sample i.
  [[nodiscard]] double time_at(std::size_t i) const noexcept {
    return start_ + period_ * static_cast<double>(i);
  }

  /// Index of the last sample with time <= t, or npos when the series is
  /// empty or starts after t.  Used to pick "the measurement taken most
  /// immediately before the test process executes" (paper, Section 2.2).
  [[nodiscard]] std::size_t index_at_or_before(double t) const noexcept;

  /// Sub-series [first, first+count).
  [[nodiscard]] TimeSeries slice(std::size_t first, std::size_t count) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  std::string name_;
  double start_ = 0.0;
  double period_ = 1.0;
  std::vector<double> values_;
};

}  // namespace nws

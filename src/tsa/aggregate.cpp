#include "tsa/aggregate.hpp"

#include <cassert>

#include "tsa/rs_analysis.hpp"
#include "util/stats.hpp"

namespace nws {

std::vector<double> aggregate_series(std::span<const double> xs,
                                     std::size_t m) {
  assert(m >= 1);
  std::vector<double> out;
  if (m == 0) return out;
  const std::size_t blocks = xs.size() / m;
  out.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    double acc = 0.0;
    for (std::size_t i = 0; i < m; ++i) acc += xs[b * m + i];
    out.push_back(acc / static_cast<double>(m));
  }
  return out;
}

TimeSeries aggregate_series(const TimeSeries& s, std::size_t m) {
  TimeSeries out(s.name() + "/agg" + std::to_string(m), s.start(),
                 s.period() * static_cast<double>(m),
                 aggregate_series(s.values(), m));
  return out;
}

std::vector<VariancePoint> variance_time(std::span<const double> xs,
                                         double growth) {
  std::vector<VariancePoint> out;
  if (xs.size() < 4 || growth <= 1.0) return out;
  for (const std::size_t m : geometric_scales(1, xs.size() / 4, growth)) {
    const auto agg = aggregate_series(xs, m);
    out.push_back({m, variance(agg)});
  }
  return out;
}

}  // namespace nws

#include "tsa/aggregate.hpp"

#include <cassert>

#include "util/stats.hpp"

namespace nws {

std::vector<double> aggregate_series(std::span<const double> xs,
                                     std::size_t m) {
  assert(m >= 1);
  std::vector<double> out;
  if (m == 0) return out;
  const std::size_t blocks = xs.size() / m;
  out.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    double acc = 0.0;
    for (std::size_t i = 0; i < m; ++i) acc += xs[b * m + i];
    out.push_back(acc / static_cast<double>(m));
  }
  return out;
}

TimeSeries aggregate_series(const TimeSeries& s, std::size_t m) {
  TimeSeries out(s.name() + "/agg" + std::to_string(m), s.start(),
                 s.period() * static_cast<double>(m),
                 aggregate_series(s.values(), m));
  return out;
}

std::vector<VariancePoint> variance_time(std::span<const double> xs,
                                         double growth) {
  std::vector<VariancePoint> out;
  if (xs.size() < 4 || growth <= 1.0) return out;
  std::size_t prev_m = 0;
  for (double mm = 1.0; mm <= static_cast<double>(xs.size() / 4);
       mm *= growth) {
    const auto m = static_cast<std::size_t>(mm);
    if (m == prev_m) continue;
    prev_m = m;
    const auto agg = aggregate_series(xs, m);
    out.push_back({m, variance(agg)});
  }
  return out;
}

}  // namespace nws

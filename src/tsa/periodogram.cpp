#include "tsa/periodogram.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>

#include "util/fft.hpp"
#include "util/stats.hpp"

namespace nws {

namespace {

/// Below this many rotate-accumulate steps the direct sum wins.
constexpr std::size_t kDirectSumCutoff = 1 << 15;

}  // namespace

std::vector<double> periodogram_naive(std::span<const double> xs,
                                      std::size_t count) {
  const std::size_t n = xs.size();
  std::vector<double> out;
  if (n < 2 || count == 0) return out;
  const double m = mean(xs);
  const std::size_t j_max = std::min(count, n / 2);
  out.reserve(j_max);
  for (std::size_t j = 1; j <= j_max; ++j) {
    const double lambda =
        2.0 * std::numbers::pi * static_cast<double>(j) /
        static_cast<double>(n);
    double re = 0.0;
    double im = 0.0;
    // Incremental rotation avoids n sin/cos calls per frequency.
    const double c = std::cos(lambda);
    const double s = std::sin(lambda);
    double cos_t = 1.0;  // cos(lambda * 0)
    double sin_t = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      const double x = xs[t] - m;
      re += x * cos_t;
      im -= x * sin_t;
      const double next_cos = cos_t * c - sin_t * s;
      sin_t = sin_t * c + cos_t * s;
      cos_t = next_cos;
    }
    out.push_back((re * re + im * im) /
                  (2.0 * std::numbers::pi * static_cast<double>(n)));
  }
  return out;
}

std::vector<double> periodogram(std::span<const double> xs,
                                std::size_t count) {
  const std::size_t n = xs.size();
  std::vector<double> out;
  if (n < 2 || count == 0) return out;
  const std::size_t j_max = std::min(count, n / 2);
  if (n * j_max <= kDirectSumCutoff) return periodogram_naive(xs, count);
  // One exact n-point DFT of the centred series covers every requested
  // Fourier frequency 2*pi*j/n at once: real_fft when n is a power of
  // two, Bluestein's chirp-z otherwise (see util/fft.hpp).
  const double m = mean(xs);
  std::vector<double> centred(n);
  for (std::size_t t = 0; t < n; ++t) centred[t] = xs[t] - m;
  const auto bins = dft_real(centred, j_max + 1);
  out.reserve(j_max);
  const double scale = 1.0 / (2.0 * std::numbers::pi * static_cast<double>(n));
  for (std::size_t j = 1; j <= j_max; ++j) {
    out.push_back((bins[j].real() * bins[j].real() +
                   bins[j].imag() * bins[j].imag()) *
                  scale);
  }
  return out;
}

HurstEstimate estimate_hurst_periodogram(std::span<const double> xs,
                                         double bandwidth_exponent) {
  HurstEstimate est;
  const std::size_t n = xs.size();
  if (n < 32 || bandwidth_exponent <= 0.0 || bandwidth_exponent >= 1.0) {
    return est;
  }
  const auto m = static_cast<std::size_t>(
      std::pow(static_cast<double>(n), bandwidth_exponent));
  const auto ordinates = periodogram(xs, m);
  std::vector<double> log_freq_term;
  std::vector<double> log_power;
  for (std::size_t j = 1; j <= ordinates.size(); ++j) {
    const double power = ordinates[j - 1];
    if (power <= 0.0) continue;  // constant series / numerically dead bins
    const double lambda =
        2.0 * std::numbers::pi * static_cast<double>(j) /
        static_cast<double>(n);
    const double half = std::sin(lambda / 2.0);
    log_freq_term.push_back(std::log(4.0 * half * half));
    log_power.push_back(std::log(power));
  }
  est.num_points = log_power.size();
  est.num_scales = log_power.size();
  if (log_power.size() < 4) return est;
  const LinearFit fit = linear_fit(log_freq_term, log_power);
  // slope = -d, H = d + 1/2.
  est.hurst = std::clamp(-fit.slope + 0.5, 0.0, 1.5);
  est.intercept = fit.intercept;
  est.r_squared = fit.r_squared;
  return est;
}

}  // namespace nws

// Spectral (log-periodogram) Hurst estimation — the Geweke/Porter-Hudak
// (GPH) estimator.
//
// A third, methodologically independent cross-check for the R/S and
// aggregated-variance estimators (rs_analysis.hpp): long-memory series have
// spectral density f(l) ~ l^(1-2H) as the frequency l -> 0, so regressing
// the log-periodogram at the lowest Fourier frequencies against
// log(4 sin^2(l/2)) gives slope -d with H = d + 1/2.  The self-similarity
// literature the paper builds on (Leland et al., Beran) routinely reports
// all three estimators side by side.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tsa/rs_analysis.hpp"

namespace nws {

/// Periodogram ordinate I(l_j) = |sum_t x_t e^{-i l_j t}|^2 / (2 pi n) at
/// the j-th Fourier frequency l_j = 2 pi j / n, for j = 1..count.  The
/// series is mean-centred first.  FFT-backed (real_fft for power-of-two n,
/// Bluestein's chirp-z otherwise), so the exact Fourier frequencies cost
/// O(n log n) at any length; small inputs use the direct rotated DFT.
[[nodiscard]] std::vector<double> periodogram(std::span<const double> xs,
                                              std::size_t count);

/// Reference O(n * count) rotated-DFT periodogram.  Kept for randomized
/// equivalence tests and as the benchmark baseline.
[[nodiscard]] std::vector<double> periodogram_naive(
    std::span<const double> xs, std::size_t count);

/// GPH estimate using the lowest floor(n^bandwidth_exponent) Fourier
/// frequencies (the customary choice is 0.5).  Returns the same structure
/// as the other Hurst estimators; hurst is clamped to [0, 1.5] to keep
/// pathological fits recognisable rather than absurd.
[[nodiscard]] HurstEstimate estimate_hurst_periodogram(
    std::span<const double> xs, double bandwidth_exponent = 0.5);

}  // namespace nws

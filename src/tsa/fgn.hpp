// Fractional Gaussian noise generation.
//
// fGn with Hurst parameter H is the canonical exactly-self-similar series;
// nwscpu uses it to *validate* the Hurst estimators (R/S pox regression and
// aggregated variance) against a known ground truth, mirroring how the
// self-similarity literature the paper cites calibrates its estimators.
//
// Two exact generators are provided:
//
//   * Davies-Harte (the default): embeds the fGn autocovariance
//       gamma(k) = 0.5 * (|k+1|^{2H} - 2|k|^{2H} + |k-1|^{2H})
//     in a circulant matrix of size 2m (m the next power of two >= n),
//     whose eigenvalues are one real FFT of the covariance row.  Scaling
//     independent Gaussians by the square-rooted eigenvalues and
//     transforming back yields a draw with *exactly* the target
//     covariance in O(n log n) time.  For fGn the circulant embedding is
//     nonnegative definite across 0 < H < 1, so no approximation is
//     involved.
//
//   * Hosking's method: draws each sample from the exact conditional
//     Gaussian distribution given all previous samples via the
//     Durbin-Levinson recursion.  O(n^2) time / O(n) memory; kept as an
//     algorithmically independent cross-check path.
//
// Both are deterministic given the Rng; they consume the stream
// differently, so the same seed produces different (equally exact) paths.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace nws {

/// Autocovariance of unit-variance fGn at lag k for Hurst parameter h.
[[nodiscard]] double fgn_autocovariance(double h, std::size_t k) noexcept;

/// Which exact fGn sampler to run.
enum class FgnMethod {
  kDaviesHarte,  ///< circulant embedding, O(n log n) — the default
  kHosking,      ///< Durbin-Levinson conditional draws, O(n^2) cross-check
};

/// Generates n samples of zero-mean, unit-variance fGn with Hurst h.
/// Requires 0 < h < 1; h = 0.5 degenerates to white noise.
[[nodiscard]] std::vector<double> generate_fgn(
    Rng& rng, double h, std::size_t n,
    FgnMethod method = FgnMethod::kDaviesHarte);

/// AR(1) series x_t = phi * x_{t-1} + e_t with unit-variance innovations.
/// Short-memory comparison series for estimator tests (its true H is 0.5
/// even though short-lag autocorrelation is high).
[[nodiscard]] std::vector<double> generate_ar1(Rng& rng, double phi,
                                               std::size_t n);

}  // namespace nws

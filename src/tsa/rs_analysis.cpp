#include "tsa/rs_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "tsa/aggregate.hpp"
#include "util/stats.hpp"

namespace nws {

double rescaled_range(std::span<const double> xs) noexcept {
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double m = mean(xs);
  const double s = stddev(xs);
  if (s <= 0.0) return 0.0;
  // Range of the mean-adjusted cumulative sums W_k = sum_{i<=k}(x_i - m),
  // including the empty prefix W_0 = 0 per Mandelbrot & Taqqu.
  double w = 0.0;
  double w_min = 0.0;
  double w_max = 0.0;
  for (double x : xs) {
    w += x - m;
    w_min = std::min(w_min, w);
    w_max = std::max(w_max, w);
  }
  return (w_max - w_min) / s;
}

std::vector<PoxPoint> pox_points(std::span<const double> xs,
                                 const RsOptions& opt) {
  std::vector<PoxPoint> out;
  const std::size_t n = xs.size();
  if (n < 2 * std::max<std::size_t>(opt.min_segment, 2)) return out;
  const std::size_t max_d =
      n / std::max<std::size_t>(opt.max_segment_divisor, 1);
  std::size_t prev_d = 0;
  for (double dd = static_cast<double>(std::max<std::size_t>(opt.min_segment, 2));
       dd <= static_cast<double>(max_d); dd *= opt.growth) {
    const auto d = static_cast<std::size_t>(dd);
    if (d == prev_d) continue;
    prev_d = d;
    for (std::size_t off = 0; off + d <= n; off += d) {
      const double rs = rescaled_range(xs.subspan(off, d));
      if (rs <= 0.0) continue;
      out.push_back({std::log10(static_cast<double>(d)), std::log10(rs)});
    }
  }
  return out;
}

HurstEstimate estimate_hurst_rs(std::span<const double> xs,
                                const RsOptions& opt) {
  HurstEstimate est;
  const auto points = pox_points(xs, opt);
  est.num_points = points.size();
  if (points.size() < 2) return est;
  // Mean log10(R/S) per distinct scale, then OLS through the means.  The
  // pox points at a scale are grouped by their (identical) log10_d key.
  std::map<double, RunningStats> by_scale;
  for (const auto& p : points) by_scale[p.log10_d].add(p.log10_rs);
  std::vector<double> log_d;
  std::vector<double> log_rs;
  log_d.reserve(by_scale.size());
  log_rs.reserve(by_scale.size());
  for (const auto& [ld, stats] : by_scale) {
    log_d.push_back(ld);
    log_rs.push_back(stats.mean());
  }
  est.num_scales = log_d.size();
  if (est.num_scales < 2) return est;
  const LinearFit fit = linear_fit(log_d, log_rs);
  est.hurst = fit.slope;
  est.intercept = fit.intercept;
  est.r_squared = fit.r_squared;
  return est;
}

HurstEstimate estimate_hurst_aggvar(std::span<const double> xs,
                                    std::size_t min_m, double growth) {
  HurstEstimate est;
  const std::size_t n = xs.size();
  if (n < 4 || growth <= 1.0) return est;
  std::vector<double> log_m;
  std::vector<double> log_var;
  std::size_t prev_m = 0;
  // Need at least ~8 aggregated blocks for a usable variance estimate.
  for (double mm = static_cast<double>(std::max<std::size_t>(min_m, 2));
       mm <= static_cast<double>(n / 8); mm *= growth) {
    const auto m = static_cast<std::size_t>(mm);
    if (m == prev_m) continue;
    prev_m = m;
    const auto agg = aggregate_series(xs, m);
    const double v = variance(agg);
    if (v <= 0.0) continue;
    log_m.push_back(std::log10(static_cast<double>(m)));
    log_var.push_back(std::log10(v));
  }
  est.num_scales = log_m.size();
  est.num_points = log_m.size();
  if (est.num_scales < 2) return est;
  const LinearFit fit = linear_fit(log_m, log_var);
  // slope = 2H - 2  =>  H = 1 + slope/2.
  est.hurst = 1.0 + fit.slope / 2.0;
  est.intercept = fit.intercept;
  est.r_squared = fit.r_squared;
  return est;
}

}  // namespace nws

#include "tsa/rs_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "tsa/aggregate.hpp"
#include "util/stats.hpp"

namespace nws {

std::vector<std::size_t> geometric_scales(std::size_t min_scale,
                                          std::size_t max_scale,
                                          double growth) {
  std::vector<std::size_t> out;
  if (min_scale > max_scale) return out;
  if (growth <= 1.0) {
    out.push_back(min_scale);
    return out;
  }
  std::size_t prev = 0;
  for (double dd = static_cast<double>(min_scale);
       dd <= static_cast<double>(max_scale); dd *= growth) {
    const auto d = static_cast<std::size_t>(dd);
    if (d == prev) continue;
    prev = d;
    out.push_back(d);
  }
  return out;
}

double rescaled_range(std::span<const double> xs) noexcept {
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double m = mean(xs);
  // One fused pass: variance accumulator plus the range of the
  // mean-adjusted cumulative sums W_k = sum_{i<=k}(x_i - m), including the
  // empty prefix W_0 = 0 per Mandelbrot & Taqqu.
  double sq = 0.0;
  double w = 0.0;
  double w_min = 0.0;
  double w_max = 0.0;
  for (double x : xs) {
    const double c = x - m;
    sq += c * c;
    w += c;
    w_min = std::min(w_min, w);
    w_max = std::max(w_max, w);
  }
  const double s = std::sqrt(sq / static_cast<double>(n));
  if (s <= 0.0) return 0.0;
  return (w_max - w_min) / s;
}

std::vector<PoxPoint> pox_points(std::span<const double> xs,
                                 const RsOptions& opt) {
  std::vector<PoxPoint> out;
  const std::size_t n = xs.size();
  if (n < 2 * std::max<std::size_t>(opt.min_segment, 2)) return out;
  const std::size_t max_d =
      n / std::max<std::size_t>(opt.max_segment_divisor, 1);
  // Prefix sums of the globally centred series and its square.  Centring
  // by the global mean keeps the sums small so the O(1) per-segment
  // moments below don't cancel catastrophically.
  const double grand_mean = mean(xs);
  std::vector<double> p1(n + 1, 0.0);
  std::vector<double> p2(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double c = xs[i] - grand_mean;
    p1[i + 1] = p1[i] + c;
    p2[i + 1] = p2[i] + c * c;
  }
  for (const std::size_t d :
       geometric_scales(std::max<std::size_t>(opt.min_segment, 2), max_d,
                        opt.growth)) {
    const double log10_d = std::log10(static_cast<double>(d));
    const double inv_d = 1.0 / static_cast<double>(d);
    for (std::size_t off = 0; off + d <= n; off += d) {
      // Segment moments in O(1) from the prefix sums.
      const double sum = p1[off + d] - p1[off];
      const double sumsq = p2[off + d] - p2[off];
      const double seg_mean = sum * inv_d;
      const double var = sumsq * inv_d - seg_mean * seg_mean;
      if (var <= 0.0) continue;
      const double s = std::sqrt(var);
      // Range of W_k = (p1[off+k] - p1[off]) - k * seg_mean, k = 0..d.
      double w_min = 0.0;
      double w_max = 0.0;
      double drift = 0.0;
      const double base = p1[off];
      for (std::size_t k = 1; k <= d; ++k) {
        drift += seg_mean;
        const double w = p1[off + k] - base - drift;
        w_min = std::min(w_min, w);
        w_max = std::max(w_max, w);
      }
      const double rs = (w_max - w_min) / s;
      if (rs <= 0.0) continue;
      out.push_back({log10_d, std::log10(rs)});
    }
  }
  return out;
}

HurstEstimate estimate_hurst_from_pox(std::span<const PoxPoint> points) {
  HurstEstimate est;
  est.num_points = points.size();
  if (points.size() < 2) return est;
  // Mean log10(R/S) per distinct scale, then OLS through the means.  The
  // pox points at a scale are grouped by their (identical) log10_d key.
  std::map<double, RunningStats> by_scale;
  for (const auto& p : points) by_scale[p.log10_d].add(p.log10_rs);
  std::vector<double> log_d;
  std::vector<double> log_rs;
  log_d.reserve(by_scale.size());
  log_rs.reserve(by_scale.size());
  for (const auto& [ld, stats] : by_scale) {
    log_d.push_back(ld);
    log_rs.push_back(stats.mean());
  }
  est.num_scales = log_d.size();
  if (est.num_scales < 2) return est;
  const LinearFit fit = linear_fit(log_d, log_rs);
  est.hurst = fit.slope;
  est.intercept = fit.intercept;
  est.r_squared = fit.r_squared;
  return est;
}

HurstEstimate estimate_hurst_rs(std::span<const double> xs,
                                const RsOptions& opt) {
  return estimate_hurst_from_pox(pox_points(xs, opt));
}

HurstEstimate estimate_hurst_aggvar(std::span<const double> xs,
                                    std::size_t min_m, double growth) {
  HurstEstimate est;
  const std::size_t n = xs.size();
  if (n < 4 || growth <= 1.0) return est;
  std::vector<double> log_m;
  std::vector<double> log_var;
  // Need at least ~8 aggregated blocks for a usable variance estimate.
  for (const std::size_t m :
       geometric_scales(std::max<std::size_t>(min_m, 2), n / 8, growth)) {
    const auto agg = aggregate_series(xs, m);
    const double v = variance(agg);
    if (v <= 0.0) continue;
    log_m.push_back(std::log10(static_cast<double>(m)));
    log_var.push_back(std::log10(v));
  }
  est.num_scales = log_m.size();
  est.num_points = log_m.size();
  if (est.num_scales < 2) return est;
  const LinearFit fit = linear_fit(log_m, log_var);
  // slope = 2H - 2  =>  H = 1 + slope/2.
  est.hurst = 1.0 + fit.slope / 2.0;
  est.intercept = fit.intercept;
  est.r_squared = fit.r_squared;
  return est;
}

}  // namespace nws

// Series aggregation (Section 3.2 of the paper).
//
// The m-aggregated series X^(m) averages non-overlapping blocks of m
// samples: X^(m)_k = (x_{km} + ... + x_{km+m-1}) / m.  The paper aggregates
// the 10-second availability series at m = 30 (five minutes) and compares
// variances (Table 4) and predictability (Tables 5-6).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tsa/series.hpp"

namespace nws {

/// Block means; a trailing partial block is dropped (the paper's X^(m)
/// definition only uses complete blocks).  m must be >= 1.
[[nodiscard]] std::vector<double> aggregate_series(std::span<const double> xs,
                                                   std::size_t m);

/// Aggregates a TimeSeries, adjusting period and start to the block centre
/// convention (start of the first block).
[[nodiscard]] TimeSeries aggregate_series(const TimeSeries& s, std::size_t m);

/// One row of a variance-time plot: aggregation level and the population
/// variance of the aggregated series.
struct VariancePoint {
  std::size_t m = 1;
  double variance = 0.0;
};

/// Variance of X^(m) for log-spaced m in [1, n/4].  Used for Table 4 and as
/// an independent self-similarity diagnostic.
[[nodiscard]] std::vector<VariancePoint> variance_time(
    std::span<const double> xs, double growth = 2.0);

}  // namespace nws

#include "tsa/series.hpp"

#include <cassert>
#include <cmath>

namespace nws {

TimeSeries::TimeSeries(std::string name, double start_seconds,
                       double period_seconds)
    : name_(std::move(name)), start_(start_seconds), period_(period_seconds) {
  assert(period_ > 0.0);
}

TimeSeries::TimeSeries(std::string name, double start_seconds,
                       double period_seconds, std::vector<double> values)
    : name_(std::move(name)),
      start_(start_seconds),
      period_(period_seconds),
      values_(std::move(values)) {
  assert(period_ > 0.0);
}

std::size_t TimeSeries::index_at_or_before(double t) const noexcept {
  if (values_.empty() || t < start_) return npos;
  const auto idx = static_cast<std::size_t>((t - start_) / period_);
  return idx >= values_.size() ? values_.size() - 1 : idx;
}

TimeSeries TimeSeries::slice(std::size_t first, std::size_t count) const {
  TimeSeries out(name_, time_at(first), period_);
  if (first >= values_.size()) return out;
  const std::size_t n = std::min(count, values_.size() - first);
  out.values_.assign(values_.begin() + static_cast<std::ptrdiff_t>(first),
                     values_.begin() + static_cast<std::ptrdiff_t>(first + n));
  return out;
}

}  // namespace nws

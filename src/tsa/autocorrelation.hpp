// Sample autocorrelation function (Figure 2 of the paper).
//
// The paper plots the first 360 autocorrelations of the 10-second
// availability series to show the slow decay characteristic of long-range
// dependence.  We use the standard biased sample ACF estimator
//   r(k) = sum_{t} (x_t - m)(x_{t+k} - m) / sum_t (x_t - m)^2
// which guarantees |r(k)| <= 1 and a positive semi-definite sequence.
//
// The vector form is FFT-backed (Wiener-Khinchin): the series is centred,
// zero-padded to a power of two >= n + max_lag so circular correlation
// equals linear at every requested lag, transformed, squared bin-wise and
// transformed back — O(n log n) for any number of lags, versus the
// O(n * max_lag) direct sum.  Small inputs fall back to the direct sum,
// which stays exported as `autocorrelations_naive` for cross-checks and
// benchmarks.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace nws {

/// ACF at a single lag k (k < n).  Returns 0 for a constant or too-short
/// series.  r(0) == 1 for any non-constant series.  Direct O(n) sum — the
/// optimum when only one lag is wanted.
[[nodiscard]] double autocorrelation(std::span<const double> xs,
                                     std::size_t lag) noexcept;

/// ACF for lags 0..max_lag inclusive (max_lag clamped to n-1).
/// FFT-backed; agrees with `autocorrelations_naive` to ~1e-12.
[[nodiscard]] std::vector<double> autocorrelations(std::span<const double> xs,
                                                   std::size_t max_lag);

/// Reference O(n * max_lag) direct-sum ACF.  Kept for randomized
/// equivalence tests and as the benchmark baseline; prefer
/// `autocorrelations` everywhere else.
[[nodiscard]] std::vector<double> autocorrelations_naive(
    std::span<const double> xs, std::size_t max_lag);

/// Summary of ACF decay used by the experiment reports: the first lag at
/// which the ACF drops below `threshold`, or `lags_computed` if it never
/// does within the computed range.
struct AcfDecay {
  std::size_t lags_computed = 0;
  std::size_t first_below = 0;
  double value_at_last = 0.0;
};

[[nodiscard]] AcfDecay acf_decay(std::span<const double> xs,
                                 std::size_t max_lag, double threshold);

/// Same summary from an already-computed ACF (as returned by
/// `autocorrelations`), so callers that need both the curve and the decay
/// summary compute the transform once.
[[nodiscard]] AcfDecay acf_decay(std::span<const double> acf,
                                 double threshold) noexcept;

}  // namespace nws

#include "sensors/availability.hpp"

#include <algorithm>
#include <cassert>

namespace nws {

double availability_from_load(double load_average) noexcept {
  assert(load_average >= 0.0);
  return 1.0 / (std::max(load_average, 0.0) + 1.0);
}

double availability_from_vmstat(const CpuFractions& f,
                                double np_smoothed) noexcept {
  assert(np_smoothed >= 0.0);
  const double np = std::max(np_smoothed, 0.0);
  const double w = std::clamp(f.user, 0.0, 1.0);
  const double avail = f.idle + f.user / (np + 1.0) + w * f.sys / (np + 1.0);
  return std::clamp(avail, 0.0, 1.0);
}

}  // namespace nws

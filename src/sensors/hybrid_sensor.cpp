#include "sensors/hybrid_sensor.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace nws {

HybridSensor::HybridSensor(HybridConfig config) : cfg_(config) {
  assert(cfg_.probe_period > 0.0 && cfg_.probe_duration > 0.0);
}

bool HybridSensor::probe_due(double now) const noexcept {
  return now >= next_probe_;
}

void HybridSensor::probe_result(double now, double probe_availability,
                                double load_reading,
                                double vmstat_reading) noexcept {
  const double load_gap = std::abs(load_reading - probe_availability);
  const double vmstat_gap = std::abs(vmstat_reading - probe_availability);
  method_ =
      load_gap <= vmstat_gap ? HybridMethod::kLoadAverage : HybridMethod::kVmstat;
  const double chosen =
      method_ == HybridMethod::kLoadAverage ? load_reading : vmstat_reading;
  bias_ = cfg_.apply_bias ? probe_availability - chosen : 0.0;
  next_probe_ = now + cfg_.probe_period;
  ++probes_;
  consecutive_failures_ = 0;
}

void HybridSensor::probe_failed(double now) noexcept {
  ++failures_;
  ++consecutive_failures_;
  if (consecutive_failures_ >= cfg_.bias_drop_failures) {
    // The bias calibrates the cheap method against a probe that no longer
    // runs; after enough failures it is stale enough to mislead.
    bias_ = 0.0;
  }
  next_probe_ = now + std::min(cfg_.probe_retry, cfg_.probe_period);
}

double HybridSensor::measure(double load_reading,
                             double vmstat_reading) const noexcept {
  const double chosen =
      method_ == HybridMethod::kLoadAverage ? load_reading : vmstat_reading;
  return std::clamp(chosen + bias_, 0.0, 1.0);
}

}  // namespace nws

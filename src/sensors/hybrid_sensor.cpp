#include "sensors/hybrid_sensor.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/metrics.hpp"

namespace nws {

namespace {

// Sensor telemetry shared by every HybridSensor in the process (the fleet
// runs one per simulated host; totals are the interesting view).
struct SensorMetrics {
  obs::Counter* probes = nullptr;
  obs::Counter* failures = nullptr;
  obs::Gauge* bias = nullptr;
};

SensorMetrics& sensor_metrics() {
  static SensorMetrics* metrics = [] {
    auto* m = new SensorMetrics();
    obs::Registry& reg = obs::registry();
    m->probes = &reg.counter("nws_sensor_probes_total",
                             "Hybrid-sensor probes that completed");
    m->failures = &reg.counter("nws_sensor_probe_failures_total",
                               "Hybrid-sensor probes that failed");
    m->bias = &reg.gauge(
        "nws_sensor_bias",
        "Most recent probe-vs-cheap-method bias correction (absolute)");
    return m;
  }();
  return *metrics;
}

}  // namespace

HybridSensor::HybridSensor(HybridConfig config) : cfg_(config) {
  assert(cfg_.probe_period > 0.0 && cfg_.probe_duration > 0.0);
}

bool HybridSensor::probe_due(double now) const noexcept {
  return now >= next_probe_;
}

void HybridSensor::probe_result(double now, double probe_availability,
                                double load_reading,
                                double vmstat_reading) noexcept {
  const double load_gap = std::abs(load_reading - probe_availability);
  const double vmstat_gap = std::abs(vmstat_reading - probe_availability);
  method_ =
      load_gap <= vmstat_gap ? HybridMethod::kLoadAverage : HybridMethod::kVmstat;
  const double chosen =
      method_ == HybridMethod::kLoadAverage ? load_reading : vmstat_reading;
  bias_ = cfg_.apply_bias ? probe_availability - chosen : 0.0;
  next_probe_ = now + cfg_.probe_period;
  ++probes_;
  consecutive_failures_ = 0;
  SensorMetrics& sm = sensor_metrics();
  sm.probes->inc();
  sm.bias->set(std::abs(bias_));
}

void HybridSensor::probe_failed(double now) noexcept {
  ++failures_;
  ++consecutive_failures_;
  sensor_metrics().failures->inc();
  if (consecutive_failures_ >= cfg_.bias_drop_failures) {
    // The bias calibrates the cheap method against a probe that no longer
    // runs; after enough failures it is stale enough to mislead.
    bias_ = 0.0;
  }
  next_probe_ = now + std::min(cfg_.probe_retry, cfg_.probe_period);
}

double HybridSensor::measure(double load_reading,
                             double vmstat_reading) const noexcept {
  const double chosen =
      method_ == HybridMethod::kLoadAverage ? load_reading : vmstat_reading;
  return std::clamp(chosen + bias_, 0.0, 1.0);
}

}  // namespace nws

// The paper's CPU-availability equations (Section 2.1).
//
// Availability is the fraction of CPU time a newly created, full-priority
// process could expect to obtain over the near future.
//
// Equation 1 (load average):
//     avail = 1 / (load_average + 1)
// The new process joins `load_average` runnable processes and receives an
// equal share.
//
// Equation 2 (vmstat):
//     avail = idle + user/(np + 1) + w * sys/(np + 1)
// where idle/user/sys are the fractions of the recent measurement interval,
// np is a smoothed count of running processes and w (= the user fraction)
// discounts system time: kernel overhead is only shared fairly in
// proportion to how much user work is getting through (a host acting as a
// network gateway gives user processes none of its system time).
#pragma once

namespace nws {

/// Equation 1.  load must be >= 0; result is in (0, 1].
[[nodiscard]] double availability_from_load(double load_average) noexcept;

/// Fractions of a measurement interval, as vmstat reports them.
/// user + sys + idle should be ~1; the constructor-free struct leaves
/// validation to callers (see vmstat_fractions()).
struct CpuFractions {
  double user = 0.0;
  double sys = 0.0;
  double idle = 1.0;
};

/// Equation 2.  np_smoothed must be >= 0.  Result clamped to [0, 1].
[[nodiscard]] double availability_from_vmstat(const CpuFractions& f,
                                              double np_smoothed) noexcept;

}  // namespace nws

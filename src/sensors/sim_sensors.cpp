#include "sensors/sim_sensors.hpp"

#include <cassert>

namespace nws {

VmstatSensor::VmstatSensor(sim::Host& host, double np_gain)
    : host_(&host), np_gain_(np_gain) {
  assert(np_gain > 0.0 && np_gain <= 1.0);
}

double VmstatSensor::measure() {
  const sim::KernelCounters cur = host_->counters();
  const auto n_run = static_cast<double>(host_->runnable_count());
  np_ = primed_ ? (1.0 - np_gain_) * np_ + np_gain_ * n_run : n_run;

  CpuFractions f;
  if (primed_) {
    const sim::Tick du = cur.user - prev_.user;
    const sim::Tick ds = cur.sys - prev_.sys;
    const sim::Tick di = cur.idle - prev_.idle;
    const sim::Tick total = du + ds + di;
    if (total > 0) {
      f.user = static_cast<double>(du) / static_cast<double>(total);
      f.sys = static_cast<double>(ds) / static_cast<double>(total);
      f.idle = static_cast<double>(di) / static_cast<double>(total);
    }
  }
  prev_ = cur;
  primed_ = true;
  last_ = f;
  return availability_from_vmstat(f, np_);
}

}  // namespace nws

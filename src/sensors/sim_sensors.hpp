// CPU availability sensors over a simulated host.
//
// These mirror the NWS CPU monitor's two cheap measurement paths:
//
//  * LoadAvgSensor — reads the kernel's smoothed 1-minute load average (what
//    `uptime` prints) and applies Equation 1.
//  * VmstatSensor — differences the kernel's cumulative user/sys/idle tick
//    counters over the interval since its previous reading (what `vmstat`
//    prints per period), smooths the running-process count, and applies
//    Equation 2.
//
// Both are non-intrusive: they read kernel state without consuming
// simulated CPU, matching the paper's observation that two concurrent
// instances of either method do not measurably load the machine.
#pragma once

#include <string>

#include "sensors/availability.hpp"
#include "sim/host.hpp"

namespace nws {

/// Common interface so experiments can sweep over measurement methods.
class CpuSensor {
 public:
  virtual ~CpuSensor() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Returns the current availability estimate in [0, 1].
  virtual double measure() = 0;
};

class LoadAvgSensor final : public CpuSensor {
 public:
  explicit LoadAvgSensor(sim::Host& host) : host_(&host) {}
  [[nodiscard]] std::string name() const override { return "load_average"; }
  double measure() override {
    return availability_from_load(host_->load_average());
  }

 private:
  sim::Host* host_;
};

class VmstatSensor final : public CpuSensor {
 public:
  /// `np_gain` is the EWMA gain for smoothing the running-process count
  /// across measurements (the paper's "smoothed average of the number of
  /// running processes over the previous set of measurements").
  explicit VmstatSensor(sim::Host& host, double np_gain = 0.3);

  [[nodiscard]] std::string name() const override { return "vmstat"; }
  double measure() override;

  /// Interval fractions of the most recent measure() call (for reports).
  [[nodiscard]] const CpuFractions& last_fractions() const noexcept {
    return last_;
  }
  [[nodiscard]] double smoothed_np() const noexcept { return np_; }

 private:
  sim::Host* host_;
  double np_gain_;
  sim::KernelCounters prev_{};
  bool primed_ = false;
  double np_ = 0.0;
  CpuFractions last_{};
};

}  // namespace nws

// The NWS hybrid CPU sensor (paper, Section 2.1).
//
// Combines the two cheap methods with an occasional short CPU probe:
//
//  * every measurement epoch (10 s) it records both the load-average and
//    vmstat availability readings;
//  * once per probe period (60 s) a small full-priority probe process spins
//    for probe_duration (1.5 s) and reports the availability it actually
//    experienced (cpu time / wall time);
//  * the cheap method whose reading is closest to the probe's experience is
//    selected to generate all measurements until the next probe, and the
//    difference (probe - method) is kept as a *bias* added to each reading.
//
// The bias is what lets the hybrid see through `nice 19` background load
// (run-queue metrics count it; the probe pre-empts it) — and what misleads
// it when a long-running full-priority process is resident (the 1.5 s probe
// pre-empts that too, thanks to BSD priority decay, but a longer test
// process cannot).
//
// The class is a pure policy object: the caller (experiment runner, example
// monitor, or a live /proc harness) supplies the cheap readings and the
// probe observations, so the same logic drives both simulated and real
// hosts and is unit-testable in isolation.
#pragma once

#include <cstddef>
#include <string>

namespace nws {

enum class HybridMethod { kLoadAverage, kVmstat };

struct HybridConfig {
  /// Seconds between probe runs.
  double probe_period = 60.0;
  /// Wall-clock seconds the probe spins.
  double probe_duration = 1.5;
  /// Whether to apply the probe bias to subsequent readings (switchable
  /// for the bias ablation).
  bool apply_bias = true;
  /// Seconds until the next probe attempt after a failed probe (retry
  /// sooner than a full period so a transient failure degrades briefly).
  double probe_retry = 10.0;
  /// Consecutive probe failures after which the (now stale) bias is
  /// dropped and the sensor falls back to the raw cheap method.
  std::size_t bias_drop_failures = 3;
};

class HybridSensor {
 public:
  explicit HybridSensor(HybridConfig config = {});

  /// True when a probe should run at (or after) time `now` (seconds).
  [[nodiscard]] bool probe_due(double now) const noexcept;

  /// Feeds the outcome of a probe together with the cheap readings taken at
  /// probe time; selects the method and updates the bias.
  void probe_result(double now, double probe_availability,
                    double load_reading, double vmstat_reading) noexcept;

  /// Reports that the probe due at `now` failed or timed out.  The sensor
  /// degrades gracefully: it keeps generating measurements from the cheap
  /// methods, retries the probe after probe_retry seconds, and drops the
  /// stale bias after bias_drop_failures consecutive failures.  degraded()
  /// and confidence() flag the reduced pedigree until a probe succeeds.
  void probe_failed(double now) noexcept;

  /// Produces the hybrid availability measurement for this epoch from the
  /// two cheap readings (selected method + bias, clamped to [0, 1]).
  [[nodiscard]] double measure(double load_reading,
                               double vmstat_reading) const noexcept;

  [[nodiscard]] HybridMethod selected() const noexcept { return method_; }
  [[nodiscard]] double bias() const noexcept { return bias_; }
  [[nodiscard]] std::size_t probes_run() const noexcept { return probes_; }
  /// Probe failures reported over the sensor's lifetime.
  [[nodiscard]] std::size_t probe_failures() const noexcept {
    return failures_;
  }
  /// True while the last probe attempt failed (measurements are cheap-
  /// method only, possibly with a stale or dropped bias).
  [[nodiscard]] bool degraded() const noexcept {
    return consecutive_failures_ > 0;
  }
  /// 1.0 with a fresh probe, shrinking with each consecutive failure —
  /// shipped alongside measurements so consumers can discount them.
  [[nodiscard]] double confidence() const noexcept {
    return 1.0 / (1.0 + static_cast<double>(consecutive_failures_));
  }
  [[nodiscard]] const HybridConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::string name() const { return "nws_hybrid"; }

 private:
  HybridConfig cfg_;
  HybridMethod method_ = HybridMethod::kLoadAverage;
  double bias_ = 0.0;
  double next_probe_ = 0.0;
  std::size_t probes_ = 0;
  std::size_t failures_ = 0;
  std::size_t consecutive_failures_ = 0;
};

}  // namespace nws

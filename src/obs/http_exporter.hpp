// HttpExporter: the HTTP observability side-plane (DESIGN.md §9).
//
// One background thread serving plain HTTP/1.x GETs on a loopback side
// port, off the same EventLoop seam the server dispatchers use:
//
//   GET /metrics  — Prometheus text exposition.  The body comes from a
//                   callback (the server hands over its METRICS wire body),
//                   so the two transports are byte-identical by
//                   construction.
//   GET /healthz  — role / epoch / replication lag / shard queue depths;
//                   200 when the owner's checks pass, 503 otherwise (what
//                   a load balancer should key on).
//   GET /tracez   — recent stitched distributed traces, slowest first
//                   (obs::render_tracez over the span rings).
//   GET /statusz  — build info, resolved config knobs, topology.
//
// Scope: an operator plane, not a web server.  GET only, no TLS, no
// keep-alive (every response carries Connection: close), bounded request
// size.  It is compiled into the nws service library (not the base obs
// library) because it rides EventLoop/TxQueue from src/nws.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "nws/event_loop.hpp"

namespace nws::obs {

struct HttpExporterConfig {
  std::uint16_t port = 0;  ///< 0 = ephemeral (start() returns the binding)
  NetBackend backend = NetBackend::kAuto;  ///< event-loop backend
  /// GET /metrics body (Prometheus exposition).  Unset: 501.
  std::function<std::string()> metrics;
  /// GET /healthz: fills the body, returns ok (200) or not (503).
  /// Unset: 200 "ok\n".
  std::function<bool(std::string&)> health;
  /// GET /statusz body.  Unset: 501.
  std::function<std::string()> statusz;
  /// Longest accepted request head; longer peers are dropped.
  std::size_t max_request_bytes = 8192;
  /// Stitched traces rendered per /tracez hit.
  std::size_t tracez_max = 20;
};

class HttpExporter {
 public:
  explicit HttpExporter(HttpExporterConfig config);
  ~HttpExporter();

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Binds 127.0.0.1:cfg.port and starts the serving thread.  Returns the
  /// bound port, 0 on failure.  Idempotent start is an error (returns 0).
  std::uint16_t start();
  /// Stops and joins the serving thread; closes every connection.  Safe to
  /// call when not started.
  void stop();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] bool running() const noexcept {
    return thread_.joinable() && !stop_.load(std::memory_order_acquire);
  }

 private:
  void serve();

  HttpExporterConfig cfg_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  LoopWaker waker_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
};

}  // namespace nws::obs

#include "obs/metrics.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

namespace nws::obs {

namespace {

bool env_metrics_default() noexcept {
  const char* env = std::getenv("NWSCPU_METRICS");
  if (env == nullptr) return true;
  return !(std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
           std::strcmp(env, "false") == 0);
}

/// Splits "base{labels}" into base and the label body (no braces).
void split_labels(std::string_view name, std::string_view& base,
                  std::string_view& labels) {
  const std::size_t brace = name.find('{');
  if (brace == std::string_view::npos) {
    base = name;
    labels = {};
    return;
  }
  base = name.substr(0, brace);
  labels = name.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.remove_suffix(1);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof buf, "%llu",
                              static_cast<unsigned long long>(v));
  out.append(buf, static_cast<std::size_t>(n));
}

void append_g(std::string& out, double v) {
  char buf[40];
  const int n = std::snprintf(buf, sizeof buf, "%g", v);
  out.append(buf, static_cast<std::size_t>(n));
}

}  // namespace

namespace detail {

std::atomic<bool>& metrics_flag() noexcept {
  static std::atomic<bool> flag{env_metrics_default()};
  return flag;
}

}  // namespace detail

void set_metrics_enabled(bool enabled) noexcept {
  detail::metrics_flag().store(enabled, std::memory_order_relaxed);
}

std::size_t this_thread_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

// ---------------------------------------------------------------------------
// HistogramSnapshot / Histogram

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  double seen = 0.0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const double in_bucket = static_cast<double>(buckets[b]);
    if (in_bucket == 0.0) continue;
    if (seen + in_bucket >= target) {
      // Linear interpolation inside [lower, upper): bucket 0 is exactly 0.
      if (b == 0) return 0.0;
      const double lower =
          b == 1 ? 1.0
                 : static_cast<double>(std::uint64_t{1} << (b - 1));
      const double upper = static_cast<double>(Histogram::bucket_upper(b));
      const double frac = (target - seen) / in_bucket;
      return scale * (lower + (upper - lower) * frac);
    }
    seen += in_bucket;
  }
  return scale * static_cast<double>(sum);  // unreachable with consistent data
}

HistogramSnapshot Histogram::snapshot() const noexcept {
  HistogramSnapshot snap;
  snap.scale = scale_;
  for (const Slot& s : slots_) {
    snap.count += s.count.load(std::memory_order_relaxed);
    snap.sum += s.sum.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < kBuckets; ++b) {
      snap.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

void Histogram::reset() noexcept {
  for (Slot& s : slots_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
  for (auto& e : exemplars_) e.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry

struct Registry::Impl {
  struct Entry {
    // Exactly one of these is set; unique_ptr keeps addresses stable as
    // the map grows.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::string help;
  };

  mutable std::mutex mu;
  // Ordered by full name so label variants of one base are adjacent and
  // the exposition is deterministic.
  std::map<std::string, Entry, std::less<>> entries;
};

Registry::Registry() : impl_(new Impl) {}
Registry::~Registry() { delete impl_; }

Counter& Registry::counter(std::string_view name, std::string_view help) {
  const std::scoped_lock lock(impl_->mu);
  auto it = impl_->entries.find(name);
  if (it == impl_->entries.end()) {
    Impl::Entry entry;
    entry.counter = std::make_unique<Counter>();
    entry.help = help;
    it = impl_->entries.emplace(std::string(name), std::move(entry)).first;
  }
  return *it->second.counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help) {
  const std::scoped_lock lock(impl_->mu);
  auto it = impl_->entries.find(name);
  if (it == impl_->entries.end()) {
    Impl::Entry entry;
    entry.gauge = std::make_unique<Gauge>();
    entry.help = help;
    it = impl_->entries.emplace(std::string(name), std::move(entry)).first;
  }
  return *it->second.gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               double scale) {
  const std::scoped_lock lock(impl_->mu);
  auto it = impl_->entries.find(name);
  if (it == impl_->entries.end()) {
    Impl::Entry entry;
    entry.histogram = std::make_unique<Histogram>(scale);
    entry.help = help;
    it = impl_->entries.emplace(std::string(name), std::move(entry)).first;
  }
  return *it->second.histogram;
}

namespace {

/// Emits "# HELP"/"# TYPE" once per base name.
void emit_header(std::string& out, std::string_view base,
                 std::string_view help, const char* type,
                 std::string& last_base) {
  if (last_base == base) return;
  last_base.assign(base);
  if (!help.empty()) {
    out += "# HELP ";
    out += base;
    out += ' ';
    out += help;
    out += '\n';
  }
  out += "# TYPE ";
  out += base;
  out += ' ';
  out += type;
  out += '\n';
}

void append_labelled(std::string& out, std::string_view base,
                     std::string_view suffix, std::string_view labels,
                     std::string_view extra_label) {
  out += base;
  out += suffix;
  if (!labels.empty() || !extra_label.empty()) {
    out += '{';
    out += labels;
    if (!labels.empty() && !extra_label.empty()) out += ',';
    out += extra_label;
    out += '}';
  }
}

}  // namespace

void Registry::render_prometheus(std::string& out) const {
  const std::scoped_lock lock(impl_->mu);
  std::string last_base;
  for (const auto& [name, entry] : impl_->entries) {
    std::string_view base, labels;
    split_labels(name, base, labels);
    if (entry.counter) {
      emit_header(out, base, entry.help, "counter", last_base);
      append_labelled(out, base, "", labels, "");
      out += ' ';
      append_u64(out, entry.counter->value());
      out += '\n';
    } else if (entry.gauge) {
      emit_header(out, base, entry.help, "gauge", last_base);
      append_labelled(out, base, "", labels, "");
      out += ' ';
      append_g(out, entry.gauge->value());
      out += '\n';
    } else if (entry.histogram) {
      emit_header(out, base, entry.help, "histogram", last_base);
      const HistogramSnapshot snap = entry.histogram->snapshot();
      // Cumulative buckets up to the highest non-empty one, then +Inf.
      std::size_t top = 0;
      for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
        if (snap.buckets[b] != 0) top = b;
      }
      std::uint64_t cum = 0;
      for (std::size_t b = 0; b <= top; ++b) {
        cum += snap.buckets[b];
        std::string le = "le=\"";
        char buf[40];
        const int n = std::snprintf(
            buf, sizeof buf, "%g",
            snap.scale * static_cast<double>(Histogram::bucket_upper(b)));
        le.append(buf, static_cast<std::size_t>(n));
        le += '"';
        append_labelled(out, base, "_bucket", labels, le);
        out += ' ';
        append_u64(out, cum);
        out += '\n';
      }
      append_labelled(out, base, "_bucket", labels, "le=\"+Inf\"");
      out += ' ';
      append_u64(out, snap.count);
      out += '\n';
      append_labelled(out, base, "_sum", labels, "");
      out += ' ';
      append_g(out, snap.scale * static_cast<double>(snap.sum));
      out += '\n';
      append_labelled(out, base, "_count", labels, "");
      out += ' ';
      append_u64(out, snap.count);
      out += '\n';
      // Exemplars ride comment lines (Prometheus text format ignores
      // them; the router's METRICS merge passes '#' lines through), one
      // per bucket a sampled trace last landed in.
      for (std::size_t b = 0; b <= top; ++b) {
        const std::uint64_t trace = entry.histogram->exemplar(b);
        if (trace == 0) continue;
        out += "# exemplar ";
        std::string le = "le=\"";
        char buf[40];
        const int n = std::snprintf(
            buf, sizeof buf, "%g",
            snap.scale * static_cast<double>(Histogram::bucket_upper(b)));
        le.append(buf, static_cast<std::size_t>(n));
        le += '"';
        append_labelled(out, base, "_bucket", labels, le);
        char trace_buf[40];
        const int tn =
            std::snprintf(trace_buf, sizeof trace_buf, " trace_id=\"%016llx\"",
                          static_cast<unsigned long long>(trace));
        out.append(trace_buf, static_cast<std::size_t>(tn));
        out += '\n';
      }
    }
  }
}

Registry::Snapshot Registry::snapshot() const {
  const std::scoped_lock lock(impl_->mu);
  Snapshot snap;
  for (const auto& [name, entry] : impl_->entries) {
    if (entry.counter) {
      snap.counters.push_back({name, entry.counter->value()});
    } else if (entry.gauge) {
      snap.gauges.push_back({name, entry.gauge->value()});
    } else if (entry.histogram) {
      const HistogramSnapshot h = entry.histogram->snapshot();
      snap.histograms.push_back({name, h.count, h.mean(), h.quantile(0.5),
                                 h.quantile(0.9), h.quantile(0.99)});
    }
  }
  return snap;
}

std::string Registry::Snapshot::to_table() const {
  std::string out;
  char buf[160];
  for (const CounterValue& c : counters) {
    if (c.value == 0) continue;
    const int n =
        std::snprintf(buf, sizeof buf, "  %-56s %12llu\n", c.name.c_str(),
                      static_cast<unsigned long long>(c.value));
    out.append(buf, static_cast<std::size_t>(n));
  }
  for (const GaugeValue& g : gauges) {
    if (g.value == 0.0) continue;
    const int n = std::snprintf(buf, sizeof buf, "  %-56s %12g\n",
                                g.name.c_str(), g.value);
    out.append(buf, static_cast<std::size_t>(n));
  }
  for (const HistogramValue& h : histograms) {
    if (h.count == 0) continue;
    const int n = std::snprintf(
        buf, sizeof buf,
        "  %-56s n=%-9llu mean=%-10.3g p50=%-10.3g p90=%-10.3g p99=%.3g\n",
        h.name.c_str(), static_cast<unsigned long long>(h.count), h.mean,
        h.p50, h.p90, h.p99);
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

void Registry::reset() {
  const std::scoped_lock lock(impl_->mu);
  for (auto& [name, entry] : impl_->entries) {
    if (entry.counter) entry.counter->reset();
    if (entry.gauge) entry.gauge->reset();
    if (entry.histogram) entry.histogram->reset();
  }
}

std::size_t Registry::size() const {
  const std::scoped_lock lock(impl_->mu);
  return impl_->entries.size();
}

Registry& registry() {
  // Leaked intentionally: instrumentation sites cache metric pointers and
  // may fire from detached threads during static destruction.
  static Registry* instance = new Registry();
  return *instance;
}

}  // namespace nws::obs

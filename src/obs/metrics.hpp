// Lock-light process-wide metrics registry: the observability core every
// layer of the NWS pipeline reports into.
//
// The paper's sensor exists to observe hosts; this registry turns the
// sensor *pipeline itself* into an observable system.  Design constraints,
// in order:
//
//  1. The hot path (the allocation-free parse/format request path, the
//     forecaster observe loop) must stay wait-free: a Counter increment is
//     one relaxed fetch_add, a Histogram record is three relaxed
//     fetch_adds into a per-thread slot, and with metrics disabled
//     (NWSCPU_METRICS=off) every operation degrades to a single relaxed
//     atomic bool load — no branches into locked code, ever.
//  2. Reads are rare and may be expensive: snapshot() and
//     render_prometheus() merge the per-slot shards under no lock at all
//     (relaxed reads of monotonic counters; totals are exact once writers
//     quiesce, and within one increment per in-flight writer otherwise).
//  3. Registration is cold: metrics are created once (under a mutex) and
//     held by pointer/reference at the instrumentation site, mirroring how
//     the sharded server keeps per-shard state — lookup cost is paid at
//     startup, not per request.
//
// Histograms use fixed log2 buckets: bucket b holds values v with
// bit_width(v) == b, i.e. [2^(b-1), 2^b), bucket 0 holds v == 0.  Latency
// histograms record integer nanoseconds and carry scale = 1e-9 so
// snapshots and the Prometheus exposition report seconds; size histograms
// (journal batch records, ...) use scale = 1.  Metric names may embed
// Prometheus labels directly: "nws_server_requests_total{verb=\"PUT\"}" —
// the renderer groups label variants under one # HELP/# TYPE header.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace nws::obs {

// ---------------------------------------------------------------------------
// Global enable switch (NWSCPU_METRICS; default on, "off"/"0"/"false"
// disables).  Cached in an atomic so the hot-path check is one relaxed
// load; set_metrics_enabled() overrides at runtime (benches flip it to
// measure their own overhead).

namespace detail {
std::atomic<bool>& metrics_flag() noexcept;
}  // namespace detail

[[nodiscard]] inline bool metrics_enabled() noexcept {
  return detail::metrics_flag().load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool enabled) noexcept;

/// Monotonic nanoseconds (steady_clock) for latency instrumentation.
[[nodiscard]] inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Stable small index for the calling thread (assigned on first use);
/// histograms fold it into their slot array.
[[nodiscard]] std::size_t this_thread_slot() noexcept;

/// Request-latency sampling period shared by the server and router hot
/// paths: 1-in-64 requests pay the two clock reads.
inline constexpr std::uint32_t kLatencySampleEvery = 64;

/// The 1-in-kLatencySampleEvery sampling decision, counted per thread — a
/// process-wide atomic counter here would bounce one cache line between
/// every dispatcher/worker on every request (micro_obs measures the
/// difference; see bench/micro_obs.cpp).
[[nodiscard]] inline bool latency_sample_tick() noexcept {
  thread_local std::uint32_t tick = 0;
  return (tick++ & (kLatencySampleEvery - 1)) == 0;
}

// ---------------------------------------------------------------------------
// Metric primitives

class Counter {
 public:
  /// Wait-free; a no-op while metrics are disabled.
  void inc(std::uint64_t n = 1) noexcept {
    if (metrics_enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept {
    if (metrics_enabled()) value_.store(v, std::memory_order_relaxed);
  }
  void add(double d) noexcept {
    if (metrics_enabled()) value_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Merged view of a histogram (see Histogram::snapshot).  Bucket counts
/// and sum are in recorded units; scale converts to reporting units.
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 48;

  std::uint64_t count = 0;
  std::uint64_t sum = 0;  ///< sum of recorded values (pre-scale)
  double scale = 1.0;
  std::array<std::uint64_t, kBuckets> buckets{};

  [[nodiscard]] double mean() const noexcept {
    return count > 0 ? scale * static_cast<double>(sum) /
                           static_cast<double>(count)
                     : 0.0;
  }
  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// containing log2 bucket, in reporting units (scale applied).
  [[nodiscard]] double quantile(double q) const noexcept;
};

/// Fixed-bucket log2 histogram, sharded across kSlots cache-line-aligned
/// slots so concurrent writers (one per server shard / fleet thread) never
/// share a line.  record() is wait-free: three relaxed fetch_adds.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = HistogramSnapshot::kBuckets;
  static constexpr std::size_t kSlots = 16;

  /// Bucket for a recorded value: bit_width(v) clamped to the top bucket
  /// (bucket 0 <=> v == 0, bucket b <=> v in [2^(b-1), 2^b)).
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t v) noexcept {
    std::size_t b = 0;
    while (v != 0) {
      v >>= 1;
      ++b;
    }
    return b < kBuckets ? b : kBuckets - 1;
  }
  /// Exclusive upper bound of bucket b in recorded units (2^b).
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t b) noexcept {
    return b + 1 >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << b);
  }

  explicit Histogram(double scale = 1.0) noexcept : scale_(scale) {}

  /// Records into the calling thread's slot; a no-op while disabled.
  /// `exemplar_trace` (nonzero = the recording request's trace id) pins
  /// the value's bucket to that trace: the exposition renders it as an
  /// exemplar comment, so a p99 outlier bucket links to a stitched trace.
  void record(std::uint64_t value, std::uint64_t exemplar_trace = 0) noexcept {
    record_in_slot(value, this_thread_slot(), exemplar_trace);
  }
  /// Records into an explicit slot (server workers pass their shard index
  /// so a pinned worker never migrates between slots).
  void record_in_slot(std::uint64_t value, std::size_t slot,
                      std::uint64_t exemplar_trace = 0) noexcept {
    if (!metrics_enabled()) return;
    const std::size_t b = bucket_index(value);
    Slot& s = slots_[slot & (kSlots - 1)];
    s.buckets[b].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
    if (exemplar_trace != 0) {
      exemplars_[b].store(exemplar_trace, std::memory_order_relaxed);
    }
  }

  /// Last sampled trace id recorded into bucket `b` (0 = none).
  [[nodiscard]] std::uint64_t exemplar(std::size_t b) const noexcept {
    return b < kBuckets ? exemplars_[b].load(std::memory_order_relaxed) : 0;
  }

  /// Merges every slot (relaxed reads; exact once writers quiesce).
  [[nodiscard]] HistogramSnapshot snapshot() const noexcept;
  [[nodiscard]] double scale() const noexcept { return scale_; }
  void reset() noexcept;

 private:
  struct alignas(64) Slot {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };

  double scale_;
  std::array<Slot, kSlots> slots_{};
  /// Bucket -> last sampled trace id.  Written only for traced requests
  /// (rare by sampling), so a plain shared array beats per-slot copies.
  std::array<std::atomic<std::uint64_t>, kBuckets> exemplars_{};
};

/// RAII latency probe: captures now_ns() when metrics are enabled and
/// records the elapsed nanoseconds into `h` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h) noexcept
      : h_(&h), start_(metrics_enabled() ? now_ns() : 0) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (start_ != 0) h_->record(now_ns() - start_);
  }

 private:
  Histogram* h_;
  std::uint64_t start_;
};

// ---------------------------------------------------------------------------
// Registry

class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Finds or creates a metric.  Returned references are stable for the
  /// registry's lifetime; call once per site and keep the pointer.  A name
  /// may embed a Prometheus label set: name{key="value",...}.
  Counter& counter(std::string_view name, std::string_view help = "");
  Gauge& gauge(std::string_view name, std::string_view help = "");
  /// `scale` converts recorded units to reporting units (1e-9 for
  /// nanosecond latencies reported as seconds).
  Histogram& histogram(std::string_view name, std::string_view help = "",
                       double scale = 1e-9);

  /// Prometheus text exposition (counters, gauges, histogram _bucket/_sum/
  /// _count series).  Appends to `out`; every line ends with '\n'.
  void render_prometheus(std::string& out) const;

  struct Snapshot {
    struct CounterValue {
      std::string name;
      std::uint64_t value;
    };
    struct GaugeValue {
      std::string name;
      double value;
    };
    struct HistogramValue {
      std::string name;
      std::uint64_t count;
      double mean, p50, p90, p99;
    };
    std::vector<CounterValue> counters;
    std::vector<GaugeValue> gauges;
    std::vector<HistogramValue> histograms;

    /// Human-readable telemetry table (the fleet runner prints this at
    /// end of run).  Zero-valued counters are elided.
    [[nodiscard]] std::string to_table() const;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Zeroes every registered metric (tests and benches; registration
  /// survives so cached pointers stay valid).
  void reset();

  [[nodiscard]] std::size_t size() const;

 private:
  struct Impl;
  Impl* impl_;
};

/// The process-wide registry every instrumentation site reports into.
[[nodiscard]] Registry& registry();

}  // namespace nws::obs

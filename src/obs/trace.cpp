#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

namespace nws::obs {

namespace {

std::size_t env_trace_capacity() noexcept {
  const char* env = std::getenv("NWSCPU_TRACE_RING");
  if (env == nullptr) return 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0') return 0;
  return static_cast<std::size_t>(v);
}

/// One thread's span ring.  The owning thread writes under the ring mutex
/// (uncontended in steady state — dumps are rare), so dump_spans() from
/// another thread is race-free.  Rings are owned by the global list and
/// never destroyed while the process lives, so a dump can safely walk
/// rings of exited threads.
struct SpanRing {
  std::mutex mu;
  std::vector<SpanRecord> buf;  ///< capacity fixed at creation
  std::size_t next = 0;         ///< overwrite cursor
  bool wrapped = false;
  std::uint32_t thread = 0;
};

struct RingList {
  std::mutex mu;
  std::vector<std::unique_ptr<SpanRing>> rings;
};

RingList& ring_list() {
  // Leaked: thread_local handles below may refer to rings during static
  // destruction of other objects.
  static RingList* list = new RingList();
  return *list;
}

std::atomic<std::uint64_t> g_spans_recorded{0};

SpanRing* this_thread_ring() {
  thread_local SpanRing* ring = [] {
    const std::size_t capacity = trace_ring_capacity();
    if (capacity == 0) return static_cast<SpanRing*>(nullptr);
    auto owned = std::make_unique<SpanRing>();
    owned->buf.resize(capacity);
    owned->thread = static_cast<std::uint32_t>(this_thread_slot());
    SpanRing* raw = owned.get();
    RingList& list = ring_list();
    const std::scoped_lock lock(list.mu);
    list.rings.push_back(std::move(owned));
    return raw;
  }();
  return ring;
}

}  // namespace

namespace detail {

std::atomic<std::size_t>& trace_capacity_flag() noexcept {
  static std::atomic<std::size_t> capacity{env_trace_capacity()};
  return capacity;
}

void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns) noexcept {
  SpanRing* ring = this_thread_ring();
  if (ring == nullptr) return;  // ring was created while tracing was off
  g_spans_recorded.fetch_add(1, std::memory_order_relaxed);
  const std::scoped_lock lock(ring->mu);
  ring->buf[ring->next] = {name, start_ns, dur_ns, ring->thread};
  if (++ring->next == ring->buf.size()) {
    ring->next = 0;
    ring->wrapped = true;
  }
}

}  // namespace detail

void set_trace_ring_capacity(std::size_t spans_per_thread) noexcept {
  detail::trace_capacity_flag().store(spans_per_thread,
                                      std::memory_order_relaxed);
}

std::vector<SpanRecord> dump_spans() {
  std::vector<SpanRecord> out;
  RingList& list = ring_list();
  const std::scoped_lock list_lock(list.mu);
  for (const auto& ring : list.rings) {
    const std::scoped_lock lock(ring->mu);
    const std::size_t held = ring->wrapped ? ring->buf.size() : ring->next;
    const std::size_t begin = ring->wrapped ? ring->next : 0;
    for (std::size_t i = 0; i < held; ++i) {
      out.push_back(ring->buf[(begin + i) % ring->buf.size()]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns < b.start_ns;
            });
  return out;
}

void dump_spans_text(std::string& out) {
  const std::vector<SpanRecord> spans = dump_spans();
  if (spans.empty()) {
    out += "(no spans recorded)\n";
    return;
  }
  const std::uint64_t epoch = spans.front().start_ns;
  char buf[160];
  for (const SpanRecord& s : spans) {
    const int n = std::snprintf(
        buf, sizeof buf, "  t+%-12.1fus thread=%-3u %-24s %.1fus\n",
        static_cast<double>(s.start_ns - epoch) / 1e3, s.thread, s.name,
        static_cast<double>(s.dur_ns) / 1e3);
    out.append(buf, static_cast<std::size_t>(n));
  }
}

void clear_spans() {
  RingList& list = ring_list();
  const std::scoped_lock list_lock(list.mu);
  for (const auto& ring : list.rings) {
    const std::scoped_lock lock(ring->mu);
    ring->next = 0;
    ring->wrapped = false;
  }
}

std::uint64_t spans_recorded() noexcept {
  return g_spans_recorded.load(std::memory_order_relaxed);
}

}  // namespace nws::obs

#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <set>

namespace nws::obs {

namespace {

std::size_t env_trace_capacity() noexcept {
  const char* env = std::getenv("NWSCPU_TRACE_RING");
  if (env == nullptr) return 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0') return 0;
  return static_cast<std::size_t>(v);
}

std::uint32_t env_trace_sample() noexcept {
  const char* env = std::getenv("NWSCPU_TRACE_SAMPLE");
  if (env == nullptr) return 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0') return 0;
  return static_cast<std::uint32_t>(v);
}

std::atomic<std::uint32_t>& sample_flag() noexcept {
  static std::atomic<std::uint32_t> every{env_trace_sample()};
  return every;
}

/// One thread's span ring.  The owning thread writes under the ring mutex
/// (uncontended in steady state — dumps are rare), so dump_spans() from
/// another thread is race-free.  Rings are owned by the global list and
/// never destroyed while the process lives, so a dump can safely walk
/// rings of exited threads.
struct SpanRing {
  std::mutex mu;
  std::vector<SpanRecord> buf;  ///< capacity fixed at creation
  std::size_t next = 0;         ///< overwrite cursor
  bool wrapped = false;
  std::uint32_t thread = 0;
};

struct RingList {
  std::mutex mu;
  std::vector<std::unique_ptr<SpanRing>> rings;
};

RingList& ring_list() {
  // Leaked: thread_local handles below may refer to rings during static
  // destruction of other objects.
  static RingList* list = new RingList();
  return *list;
}

std::atomic<std::uint64_t> g_spans_recorded{0};

SpanRing* this_thread_ring() {
  thread_local SpanRing* ring = [] {
    const std::size_t capacity = trace_ring_capacity();
    if (capacity == 0) return static_cast<SpanRing*>(nullptr);
    auto owned = std::make_unique<SpanRing>();
    owned->buf.resize(capacity);
    owned->thread = static_cast<std::uint32_t>(this_thread_slot());
    SpanRing* raw = owned.get();
    RingList& list = ring_list();
    const std::scoped_lock lock(list.mu);
    list.rings.push_back(std::move(owned));
    return raw;
  }();
  return ring;
}

void push_record(const SpanRecord& record) noexcept {
  SpanRing* ring = this_thread_ring();
  if (ring == nullptr) return;  // ring was created while tracing was off
  g_spans_recorded.fetch_add(1, std::memory_order_relaxed);
  const std::scoped_lock lock(ring->mu);
  SpanRecord stored = record;
  stored.thread = ring->thread;
  ring->buf[ring->next] = stored;
  if (++ring->next == ring->buf.size()) {
    ring->next = 0;
    ring->wrapped = true;
  }
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t& thread_rng_state() noexcept {
  // Distinct deterministic-per-thread stream; the clock term keeps ids
  // distinct across processes (client, router and server each mint).
  thread_local std::uint64_t state =
      (static_cast<std::uint64_t>(this_thread_slot()) + 1) *
          0x9e3779b97f4a7c15ull ^
      now_ns();
  return state;
}

}  // namespace

namespace detail {

std::atomic<std::size_t>& trace_capacity_flag() noexcept {
  static std::atomic<std::size_t> capacity{env_trace_capacity()};
  return capacity;
}

void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns) noexcept {
  SpanRecord record;
  record.name = name;
  record.start_ns = start_ns;
  record.dur_ns = dur_ns;
  push_record(record);
}

TraceContext& ambient_context() noexcept {
  thread_local TraceContext ctx;
  return ctx;
}

}  // namespace detail

void set_trace_ring_capacity(std::size_t spans_per_thread) noexcept {
  detail::trace_capacity_flag().store(spans_per_thread,
                                      std::memory_order_relaxed);
}

std::uint32_t trace_sample_every() noexcept {
  return sample_flag().load(std::memory_order_relaxed);
}

void set_trace_sample_every(std::uint32_t every) noexcept {
  sample_flag().store(every, std::memory_order_relaxed);
}

std::uint64_t mint_span_id() noexcept {
  std::uint64_t id = splitmix64(thread_rng_state());
  if (id == 0) id = 1;
  return id;
}

TraceContext mint_trace_context() noexcept {
  const std::uint32_t every = trace_sample_every();
  if (every == 0) return TraceContext{};
  thread_local std::uint32_t tick = 0;
  if (tick++ % every != 0) return TraceContext{};
  TraceContext ctx;
  ctx.trace_id = mint_span_id();
  ctx.span_id = mint_span_id();
  ctx.sampled = true;
  return ctx;
}

void TraceSpan::begin() noexcept {
  start_ = now_ns();
  TraceContext& ambient = detail::ambient_context();
  prev_ = ambient;
  if (ambient.active()) {
    trace_id_ = ambient.trace_id;
    parent_id_ = ambient.span_id;
    span_id_ = mint_span_id();
    ambient.span_id = span_id_;  // children parent to this span
  }
}

void TraceSpan::end() noexcept {
  const std::uint64_t dur = now_ns() - start_;
  detail::ambient_context() = prev_;
  SpanRecord record;
  record.name = name_;
  record.start_ns = start_;
  record.dur_ns = dur;
  record.trace_id = trace_id_;
  record.span_id = span_id_;
  record.parent_id = parent_id_;
  push_record(record);
}

void record_span_with(const char* name, std::uint64_t start_ns,
                      std::uint64_t dur_ns, std::uint64_t trace_id,
                      std::uint64_t span_id,
                      std::uint64_t parent_id) noexcept {
  if (!tracing_enabled()) return;
  SpanRecord record;
  record.name = name;
  record.start_ns = start_ns;
  record.dur_ns = dur_ns;
  record.trace_id = trace_id;
  record.span_id = span_id;
  record.parent_id = parent_id;
  push_record(record);
}

std::vector<SpanRecord> dump_spans() {
  std::vector<SpanRecord> out;
  RingList& list = ring_list();
  const std::scoped_lock list_lock(list.mu);
  for (const auto& ring : list.rings) {
    const std::scoped_lock lock(ring->mu);
    const std::size_t held = ring->wrapped ? ring->buf.size() : ring->next;
    const std::size_t begin = ring->wrapped ? ring->next : 0;
    for (std::size_t i = 0; i < held; ++i) {
      out.push_back(ring->buf[(begin + i) % ring->buf.size()]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns < b.start_ns;
            });
  return out;
}

void dump_spans_text(std::string& out) {
  const std::vector<SpanRecord> spans = dump_spans();
  if (spans.empty()) {
    out += "(no spans recorded)\n";
    return;
  }
  const std::uint64_t epoch = spans.front().start_ns;
  char buf[160];
  for (const SpanRecord& s : spans) {
    const int n = std::snprintf(
        buf, sizeof buf, "  t+%-12.1fus thread=%-3u %-24s %.1fus\n",
        static_cast<double>(s.start_ns - epoch) / 1e3, s.thread, s.name,
        static_cast<double>(s.dur_ns) / 1e3);
    out.append(buf, static_cast<std::size_t>(n));
  }
}

void clear_spans() {
  RingList& list = ring_list();
  const std::scoped_lock list_lock(list.mu);
  for (const auto& ring : list.rings) {
    const std::scoped_lock lock(ring->mu);
    ring->next = 0;
    ring->wrapped = false;
  }
}

std::uint64_t spans_recorded() noexcept {
  return g_spans_recorded.load(std::memory_order_relaxed);
}

std::vector<TraceSummary> dump_traces() {
  const std::vector<SpanRecord> spans = dump_spans();  // already start-sorted
  std::map<std::uint64_t, TraceSummary> by_trace;
  for (const SpanRecord& s : spans) {
    if (s.trace_id == 0) continue;
    TraceSummary& t = by_trace[s.trace_id];
    t.trace_id = s.trace_id;
    t.spans.push_back(s);
  }
  std::vector<TraceSummary> out;
  out.reserve(by_trace.size());
  for (auto& [id, t] : by_trace) {
    std::set<std::uint64_t> ids;
    for (const SpanRecord& s : t.spans) ids.insert(s.span_id);
    std::uint64_t end_ns = 0;
    t.start_ns = t.spans.front().start_ns;
    for (const SpanRecord& s : t.spans) {
      end_ns = std::max(end_ns, s.start_ns + s.dur_ns);
      if (s.parent_id != 0 && ids.count(s.parent_id) != 0) ++t.parent_links;
    }
    t.dur_ns = end_ns - t.start_ns;
    out.push_back(std::move(t));
  }
  std::sort(out.begin(), out.end(),
            [](const TraceSummary& a, const TraceSummary& b) {
              return a.dur_ns > b.dur_ns;
            });
  return out;
}

void render_tracez(std::string& out, std::size_t max_traces) {
  const std::vector<TraceSummary> traces = dump_traces();
  if (traces.empty()) {
    out += "(no traces recorded)\n";
    return;
  }
  char buf[200];
  std::size_t shown = 0;
  for (const TraceSummary& t : traces) {
    if (shown++ == max_traces) break;
    int n = std::snprintf(
        buf, sizeof buf,
        "trace %016llx  %.1fus  spans=%zu parent_links=%zu\n",
        static_cast<unsigned long long>(t.trace_id),
        static_cast<double>(t.dur_ns) / 1e3, t.spans.size(), t.parent_links);
    out.append(buf, static_cast<std::size_t>(n));
    for (const SpanRecord& s : t.spans) {
      n = std::snprintf(
          buf, sizeof buf,
          "  t+%-10.1fus %-20s %10.1fus  span=%016llx parent=%016llx "
          "thread=%u\n",
          static_cast<double>(s.start_ns - t.start_ns) / 1e3, s.name,
          static_cast<double>(s.dur_ns) / 1e3,
          static_cast<unsigned long long>(s.span_id),
          static_cast<unsigned long long>(s.parent_id), s.thread);
      out.append(buf, static_cast<std::size_t>(n));
    }
  }
  if (traces.size() > max_traces) {
    const int n = std::snprintf(buf, sizeof buf, "(%zu more traces)\n",
                                traces.size() - max_traces);
    out.append(buf, static_cast<std::size_t>(n));
  }
}

}  // namespace nws::obs

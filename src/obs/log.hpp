// Tiny leveled structured logger for long-running fleet/experiment
// binaries: off by default, enabled at runtime with NWSCPU_LOG=error|info|
// debug (or set_log_level()), so a stuck overnight run is diagnosable
// without recompiling.
//
// One line per call, serialised under a mutex, written to stderr:
//
//   [nwscpu info  +12.345s fleet] simulated thing2 (3.1s)
//
// The component tag keys grep-ability ("fleet", "server", "obs"); the
// timestamp is seconds since the first log call.  Message formatting is
// printf-style and only evaluated when the level is enabled — guard any
// expensive argument computation with log_enabled().
#pragma once

#include <cstdarg>
#include <cstdint>

namespace nws::obs {

enum class LogLevel { kOff = 0, kError = 1, kInfo = 2, kDebug = 3 };

/// Current level (cached NWSCPU_LOG; default kOff).
[[nodiscard]] LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] bool log_enabled(LogLevel level) noexcept;

/// Core sink; prefer the level helpers below.
void vlog(LogLevel level, const char* component, const char* fmt,
          std::va_list args);

#if defined(__GNUC__)
#define NWSCPU_PRINTF(fmt_idx, arg_idx) \
  __attribute__((format(printf, fmt_idx, arg_idx)))
#else
#define NWSCPU_PRINTF(fmt_idx, arg_idx)
#endif

void log_error(const char* component, const char* fmt, ...)
    NWSCPU_PRINTF(2, 3);
void log_info(const char* component, const char* fmt, ...) NWSCPU_PRINTF(2, 3);
void log_debug(const char* component, const char* fmt, ...)
    NWSCPU_PRINTF(2, 3);

/// Slow-request threshold in milliseconds (0 = slow logging off).  Cached
/// from NWSCPU_SLOW_MS at first use; set_slow_log_ms() overrides.  The
/// server times requests whenever this is nonzero and emits one structured
/// line per request that exceeds it.
[[nodiscard]] std::uint32_t slow_log_ms() noexcept;
void set_slow_log_ms(std::uint32_t ms) noexcept;
[[nodiscard]] inline bool slow_log_enabled() noexcept {
  return slow_log_ms() != 0;
}

/// The slow-request sink: same serialized stderr format as the leveled
/// helpers (tagged "slow "), but gated ONLY by NWSCPU_SLOW_MS — setting
/// the threshold is the opt-in, independent of NWSCPU_LOG.
void slow_log(const char* component, const char* fmt, ...) NWSCPU_PRINTF(2, 3);

#undef NWSCPU_PRINTF

}  // namespace nws::obs

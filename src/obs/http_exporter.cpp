#include "obs/http_exporter.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <unordered_map>
#include <vector>

#include "obs/log.hpp"
#include "obs/trace.hpp"

namespace nws::obs {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

int open_listener(std::uint16_t* port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(*port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 16) < 0) {
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return -1;
  }
  *port = ntohs(addr.sin_port);
  set_nonblocking(fd);
  return fd;
}

/// One client connection: request bytes in, one response out, close.
struct HttpConn {
  std::string rx;
  TxQueue tx;
  bool responded = false;  ///< response queued; close once tx drains
};

struct Response {
  int status = 200;
  const char* content_type = "text/plain; charset=utf-8";
  std::string body;
};

const char* status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    default:
      return "Error";
  }
}

std::string render_http(const Response& r) {
  std::string out;
  out.reserve(r.body.size() + 160);
  out += "HTTP/1.1 ";
  out += std::to_string(r.status);
  out += ' ';
  out += status_text(r.status);
  out += "\r\nContent-Type: ";
  out += r.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(r.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += r.body;
  return out;
}

}  // namespace

HttpExporter::HttpExporter(HttpExporterConfig config)
    : cfg_(std::move(config)) {}

HttpExporter::~HttpExporter() { stop(); }

std::uint16_t HttpExporter::start() {
  if (thread_.joinable()) return 0;
  std::uint16_t port = cfg_.port;
  listen_fd_ = open_listener(&port);
  if (listen_fd_ < 0) return 0;
  if (!waker_.open()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return 0;
  }
  port_ = port;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread(&HttpExporter::serve, this);
  return port_;
}

void HttpExporter::stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  waker_.wake();
  thread_.join();
  waker_.close_fds();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  port_ = 0;
}

void HttpExporter::serve() {
  EventLoop loop(cfg_.backend);
  loop.add(listen_fd_, static_cast<std::uint64_t>(listen_fd_), false);
  loop.add(waker_.rx(), static_cast<std::uint64_t>(waker_.rx()), false);
  std::unordered_map<int, HttpConn> conns;
  std::vector<LoopEvent> events;
  std::vector<int> doomed;

  const auto respond = [&](HttpConn& c) {
    // Head complete: "<METHOD> <path> HTTP/1.x" — the operator plane
    // ignores every header, so the request line is all that matters.
    const std::size_t line_end = c.rx.find("\r\n");
    const std::string_view line =
        std::string_view(c.rx).substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
    std::string_view method, target;
    if (sp1 != std::string_view::npos && sp2 != std::string_view::npos) {
      method = line.substr(0, sp1);
      target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    }
    const std::size_t query = target.find('?');
    const std::string_view path =
        query == std::string_view::npos ? target : target.substr(0, query);

    Response r;
    if (method != "GET") {
      r.status = 405;
      r.body = "GET only\n";
    } else if (path == "/metrics") {
      if (cfg_.metrics) {
        // The exact METRICS wire body: Prometheus exposition format.
        r.content_type = "text/plain; version=0.0.4; charset=utf-8";
        r.body = cfg_.metrics();
      } else {
        r.status = 501;
        r.body = "no metrics source\n";
      }
    } else if (path == "/healthz") {
      if (cfg_.health) {
        if (!cfg_.health(r.body)) r.status = 503;
      } else {
        r.body = "ok\n";
      }
    } else if (path == "/tracez") {
      r.body.reserve(4096);
      render_tracez(r.body, cfg_.tracez_max);
      if (r.body.empty()) r.body = "(no traces retained)\n";
    } else if (path == "/statusz") {
      if (cfg_.statusz) {
        r.body = cfg_.statusz();
      } else {
        r.status = 501;
        r.body = "no status source\n";
      }
    } else {
      r.status = 404;
      r.body = "not found; try /metrics /healthz /tracez /statusz\n";
    }
    c.tx.push(render_http(r));
    c.responded = true;
    c.rx.clear();
  };

  while (!stop_.load(std::memory_order_acquire)) {
    loop.wait(events, -1);
    if (stop_.load(std::memory_order_acquire)) break;
    for (const LoopEvent& ev : events) {
      if (ev.fd == waker_.rx()) {
        waker_.drain();
        continue;
      }
      if (ev.fd == listen_fd_) {
        for (;;) {
          const int fd = ::accept(listen_fd_, nullptr, nullptr);
          if (fd < 0) break;
          set_nonblocking(fd);
          const int one = 1;
          ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
          loop.add(fd, static_cast<std::uint64_t>(fd), false);
          conns.emplace(fd, HttpConn{});
        }
        continue;
      }
      const auto it = conns.find(ev.fd);
      if (it == conns.end()) continue;
      HttpConn& c = it->second;
      bool drop = ev.error;
      if (!drop && ev.readable && !c.responded) {
        char buf[4096];
        for (;;) {
          const ssize_t n = ::recv(ev.fd, buf, sizeof buf, 0);
          if (n > 0) {
            c.rx.append(buf, static_cast<std::size_t>(n));
            if (c.rx.size() > cfg_.max_request_bytes) {
              drop = true;
              break;
            }
            continue;
          }
          if (n == 0) drop = true;  // EOF before a complete request
          if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
              errno != EINTR) {
            drop = true;
          }
          break;
        }
        if (!drop && c.rx.find("\r\n\r\n") != std::string::npos) {
          respond(c);
        }
      }
      if (!drop && !c.tx.empty()) {
        const TxQueue::FlushStatus fs = c.tx.flush(ev.fd);
        if (fs == TxQueue::FlushStatus::kClosed) drop = true;
        loop.update(ev.fd, static_cast<std::uint64_t>(ev.fd),
                    fs == TxQueue::FlushStatus::kBlocked);
      }
      if (drop || (c.responded && c.tx.empty())) {
        doomed.push_back(ev.fd);
      }
    }
    for (const int fd : doomed) {
      const auto it = conns.find(fd);
      if (it == conns.end()) continue;
      loop.remove(fd);
      ::close(fd);
      conns.erase(it);
    }
    doomed.clear();
  }
  for (auto& [fd, c] : conns) {
    loop.remove(fd);
    ::close(fd);
  }
  conns.clear();
  loop.remove(listen_fd_);
  loop.remove(waker_.rx());
}

}  // namespace nws::obs

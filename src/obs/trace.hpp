// Lightweight span tracing into per-thread ring buffers.
//
// Each instrumented stage of the request path (accept -> parse -> shard
// dispatch -> apply -> journal group-commit -> respond) and of the client
// outbox (enqueue -> flush -> ack) opens a TraceSpan; on destruction the
// span (static name, start, duration, thread) is pushed into the calling
// thread's fixed-capacity ring, overwriting the oldest entry when full —
// recent history is what matters when diagnosing a stall.
//
// Tracing is OFF by default: the ring capacity comes from the
// NWSCPU_TRACE_RING environment variable (spans per thread, 0 = disabled)
// or set_trace_ring_capacity().  While disabled a TraceSpan costs one
// relaxed atomic load and no clock read.
//
// dump_spans() is the on-demand API: it walks every thread's ring (rings
// outlive their threads, so a dump races with nothing) and returns the
// spans sorted by start time; dump_spans_text() renders them for humans.
// Span names must be string literals (the ring stores the pointer).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace nws::obs {

struct SpanRecord {
  const char* name = nullptr;  ///< static string (site label)
  std::uint64_t start_ns = 0;  ///< steady-clock start
  std::uint64_t dur_ns = 0;
  std::uint32_t thread = 0;  ///< this_thread_slot() of the recording thread
};

namespace detail {
std::atomic<std::size_t>& trace_capacity_flag() noexcept;
void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns) noexcept;
}  // namespace detail

/// Per-thread ring capacity (0 = tracing disabled).
[[nodiscard]] inline std::size_t trace_ring_capacity() noexcept {
  return detail::trace_capacity_flag().load(std::memory_order_relaxed);
}
[[nodiscard]] inline bool tracing_enabled() noexcept {
  return trace_ring_capacity() > 0;
}
/// Overrides NWSCPU_TRACE_RING.  Applies to rings created after the call;
/// existing rings keep their capacity (tests call this before tracing).
void set_trace_ring_capacity(std::size_t spans_per_thread) noexcept;

/// RAII span: records on destruction when tracing is enabled.  `name`
/// must be a string literal (stored by pointer).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept
      : name_(name), start_(tracing_enabled() ? now_ns() : 0) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (start_ != 0) detail::record_span(name_, start_, now_ns() - start_);
  }

 private:
  const char* name_;
  std::uint64_t start_;
};

/// Every retained span across every thread's ring, sorted by start time.
[[nodiscard]] std::vector<SpanRecord> dump_spans();
/// Human-readable dump ("<t+offset_us> thread=k name dur_us"), appended to
/// `out`.
void dump_spans_text(std::string& out);
/// Empties every ring (tests).
void clear_spans();
/// Spans recorded since process start (including overwritten ones).
[[nodiscard]] std::uint64_t spans_recorded() noexcept;

}  // namespace nws::obs

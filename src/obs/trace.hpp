// Lightweight span tracing into per-thread ring buffers, with optional
// cross-process trace context for distributed stitching.
//
// Each instrumented stage of the request path (accept -> parse -> shard
// dispatch -> apply -> journal group-commit -> respond) and of the client
// outbox (enqueue -> flush -> ack) opens a TraceSpan; on destruction the
// span (static name, start, duration, thread, trace/span/parent ids) is
// pushed into the calling thread's fixed-capacity ring, overwriting the
// oldest entry when full — recent history is what matters when diagnosing
// a stall.
//
// Distributed tracing layers a 64-bit trace-id/span-id/sampled-bit context
// on top.  mint_trace_context() makes the root decision (1-in-N per
// NWSCPU_TRACE_SAMPLE; 0 = never); the context travels on the wire (see
// protocol.hpp) and the receiver installs it as the calling thread's
// *ambient* context (ScopedTraceContext).  Every TraceSpan opened under an
// ambient context inherits its trace id, records the ambient span id as
// its parent, and installs itself as the ambient context for its lifetime
// — so nested spans form a parent chain with zero changes at the
// instrumentation sites.  dump_traces() stitches the rings back into
// per-trace span trees, slowest first.
//
// Tracing is OFF by default: the ring capacity comes from the
// NWSCPU_TRACE_RING environment variable (spans per thread, 0 = disabled)
// or set_trace_ring_capacity().  While disabled a TraceSpan costs one
// relaxed atomic load and no clock read.
//
// dump_spans() is the on-demand API: it walks every thread's ring (rings
// outlive their threads, so a dump races with nothing) and returns the
// spans sorted by start time; dump_spans_text() renders them for humans.
// Span names must be string literals (the ring stores the pointer).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace nws::obs {

struct SpanRecord {
  const char* name = nullptr;  ///< static string (site label)
  std::uint64_t start_ns = 0;  ///< steady-clock start
  std::uint64_t dur_ns = 0;
  std::uint32_t thread = 0;  ///< this_thread_slot() of the recording thread
  std::uint64_t trace_id = 0;   ///< 0 = not part of a distributed trace
  std::uint64_t span_id = 0;    ///< this span's id (0 when untraced)
  std::uint64_t parent_id = 0;  ///< enclosing span's id (0 = root)
};

/// The cross-process trace context: what travels on the wire and what a
/// thread holds ambiently while processing a traced request.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;  ///< the sender's span (the receiver's parent)
  bool sampled = false;

  [[nodiscard]] bool active() const noexcept {
    return sampled && trace_id != 0;
  }
};

namespace detail {
std::atomic<std::size_t>& trace_capacity_flag() noexcept;
void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns) noexcept;
TraceContext& ambient_context() noexcept;
}  // namespace detail

/// Per-thread ring capacity (0 = tracing disabled).
[[nodiscard]] inline std::size_t trace_ring_capacity() noexcept {
  return detail::trace_capacity_flag().load(std::memory_order_relaxed);
}
[[nodiscard]] inline bool tracing_enabled() noexcept {
  return trace_ring_capacity() > 0;
}
/// Overrides NWSCPU_TRACE_RING.  Applies to rings created after the call;
/// existing rings keep their capacity (tests call this before tracing).
void set_trace_ring_capacity(std::size_t spans_per_thread) noexcept;

/// Root sampling period: 1-in-N requests mint a sampled context (0 = no
/// request ever does).  Cached from NWSCPU_TRACE_SAMPLE at first use.
[[nodiscard]] std::uint32_t trace_sample_every() noexcept;
void set_trace_sample_every(std::uint32_t every) noexcept;

/// The root sampling decision, made once per request at the edge (the
/// client).  Returns an active context (fresh random trace id, the
/// caller's root span id) for 1-in-trace_sample_every() calls on this
/// thread, an inactive context otherwise.  The tick counter is
/// thread-local: no shared cache line on the request path.
[[nodiscard]] TraceContext mint_trace_context() noexcept;

/// Mints a fresh span id (per-thread splitmix64 stream, never 0).
[[nodiscard]] std::uint64_t mint_span_id() noexcept;

/// The calling thread's ambient context (inactive by default).
[[nodiscard]] inline TraceContext current_trace_context() noexcept {
  return detail::ambient_context();
}

/// Installs `ctx` as the calling thread's ambient context for the scope's
/// lifetime (restores the previous context on destruction).  The wire
/// receiver wraps request execution in one of these so every TraceSpan
/// underneath parents to the sender's span.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx) noexcept
      : prev_(detail::ambient_context()) {
    detail::ambient_context() = ctx;
  }
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;
  ~ScopedTraceContext() { detail::ambient_context() = prev_; }

 private:
  TraceContext prev_;
};

/// RAII span: records on destruction when tracing is enabled.  `name`
/// must be a string literal (stored by pointer).  Under an active ambient
/// context the span inherits the trace id, parents to the ambient span,
/// and becomes the ambient span for its lifetime.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept : name_(name), start_(0) {
    if (tracing_enabled()) begin();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (start_ != 0) end();
  }

 private:
  void begin() noexcept;  // out of line: touches the ambient thread-local
  void end() noexcept;

  const char* name_;
  std::uint64_t start_;
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_id_ = 0;
  TraceContext prev_;
};

/// Records a completed span with explicit ids — for async completions
/// (the router's in-flight table) where no RAII scope brackets the work.
void record_span_with(const char* name, std::uint64_t start_ns,
                      std::uint64_t dur_ns, std::uint64_t trace_id,
                      std::uint64_t span_id, std::uint64_t parent_id) noexcept;

/// Every retained span across every thread's ring, sorted by start time.
[[nodiscard]] std::vector<SpanRecord> dump_spans();
/// Human-readable dump ("<t+offset_us> thread=k name dur_us"), appended to
/// `out`.
void dump_spans_text(std::string& out);
/// Empties every ring (tests).
void clear_spans();
/// Spans recorded since process start (including overwritten ones).
[[nodiscard]] std::uint64_t spans_recorded() noexcept;

/// One stitched trace: every retained span sharing a nonzero trace id.
struct TraceSummary {
  std::uint64_t trace_id = 0;
  std::uint64_t start_ns = 0;  ///< earliest span start
  std::uint64_t dur_ns = 0;    ///< latest span end - earliest start
  std::size_t parent_links = 0;  ///< spans whose parent is also in the trace
  std::vector<SpanRecord> spans;  ///< sorted by start time
};

/// Groups the rings' spans by trace id, slowest trace first.
[[nodiscard]] std::vector<TraceSummary> dump_traces();
/// Renders up to `max_traces` stitched traces ("/tracez" body), appended
/// to `out`: one header line per trace, one indented line per span with
/// its parent link.
void render_tracez(std::string& out, std::size_t max_traces = 20);

}  // namespace nws::obs

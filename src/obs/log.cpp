#include "obs/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace nws::obs {

namespace {

LogLevel env_log_level() noexcept {
  const char* env = std::getenv("NWSCPU_LOG");
  if (env == nullptr) return LogLevel::kOff;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kOff;
}

std::atomic<int>& level_flag() noexcept {
  static std::atomic<int> level{static_cast<int>(env_log_level())};
  return level;
}

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kError:
      return "error";
    case LogLevel::kInfo:
      return "info ";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kOff:
      break;
  }
  return "?    ";
}

double seconds_since_start() noexcept {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::mutex& sink_mutex() noexcept {
  static std::mutex mu;
  return mu;
}

std::uint32_t env_slow_ms() noexcept {
  const char* env = std::getenv("NWSCPU_SLOW_MS");
  if (env == nullptr) return 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0') return 0;
  return static_cast<std::uint32_t>(v);
}

std::atomic<std::uint32_t>& slow_ms_flag() noexcept {
  static std::atomic<std::uint32_t> ms{env_slow_ms()};
  return ms;
}

}  // namespace

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(level_flag().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) noexcept {
  level_flag().store(static_cast<int>(level), std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) <= level_flag().load(std::memory_order_relaxed)
         && level != LogLevel::kOff;
}

void vlog(LogLevel level, const char* component, const char* fmt,
          std::va_list args) {
  if (!log_enabled(level)) return;
  char message[1024];
  std::vsnprintf(message, sizeof message, fmt, args);
  const std::scoped_lock lock(sink_mutex());
  std::fprintf(stderr, "[nwscpu %s +%.3fs %s] %s\n", level_name(level),
               seconds_since_start(), component, message);
}

void log_error(const char* component, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vlog(LogLevel::kError, component, fmt, args);
  va_end(args);
}

void log_info(const char* component, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vlog(LogLevel::kInfo, component, fmt, args);
  va_end(args);
}

void log_debug(const char* component, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vlog(LogLevel::kDebug, component, fmt, args);
  va_end(args);
}

std::uint32_t slow_log_ms() noexcept {
  return slow_ms_flag().load(std::memory_order_relaxed);
}

void set_slow_log_ms(std::uint32_t ms) noexcept {
  slow_ms_flag().store(ms, std::memory_order_relaxed);
}

void slow_log(const char* component, const char* fmt, ...) {
  if (!slow_log_enabled()) return;
  char message[1024];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(message, sizeof message, fmt, args);
  va_end(args);
  const std::scoped_lock lock(sink_mutex());
  std::fprintf(stderr, "[nwscpu %s +%.3fs %s] %s\n", "slow ",
               seconds_since_start(), component, message);
}

}  // namespace nws::obs

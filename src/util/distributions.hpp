// Deterministic sampling from the distributions used by the workload models.
//
// We implement the inverse-CDF / transformation samplers ourselves rather
// than relying on <random> distributions, whose output is not specified
// bit-for-bit across standard library implementations.  Reproducibility of
// every experiment from its seed is a hard requirement (see DESIGN.md).
#pragma once

#include "util/rng.hpp"

namespace nws {

/// Exponential with the given mean (mean = 1/lambda).  mean must be > 0.
[[nodiscard]] double sample_exponential(Rng& rng, double mean) noexcept;

/// Pareto (type I) with shape alpha and minimum xm:  P(X > x) = (xm/x)^alpha.
/// Heavy-tailed for alpha <= 2; the classic generator of self-similar
/// aggregate load (Willinger et al.).  alpha and xm must be > 0.
[[nodiscard]] double sample_pareto(Rng& rng, double alpha, double xm) noexcept;

/// Bounded Pareto on [xm, cap]: Pareto resampled through the truncated CDF.
/// Keeps heavy tails while preventing a single draw from exceeding `cap`
/// (e.g. an interactive burst longer than the whole experiment).
[[nodiscard]] double sample_bounded_pareto(Rng& rng, double alpha, double xm,
                                           double cap) noexcept;

/// Standard normal via Box-Muller (single value; the spare is discarded to
/// keep the sampler stateless and the stream position deterministic).
[[nodiscard]] double sample_normal(Rng& rng) noexcept;

/// Normal with given mean and standard deviation (sigma >= 0).
[[nodiscard]] double sample_normal(Rng& rng, double mean,
                                   double sigma) noexcept;

/// Lognormal parameterised by the mean/sigma of the underlying normal.
[[nodiscard]] double sample_lognormal(Rng& rng, double mu,
                                      double sigma) noexcept;

/// Poisson-process inter-arrival gap for the given rate (events per unit
/// time).  rate must be > 0.
[[nodiscard]] double sample_interarrival(Rng& rng, double rate) noexcept;

}  // namespace nws

#include "util/csv.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace nws {

namespace {

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  std::stringstream ss(line);
  while (std::getline(ss, field, ',')) {
    // Trim surrounding spaces.
    const auto begin = field.find_first_not_of(" \t\r");
    const auto end = field.find_last_not_of(" \t\r");
    out.push_back(begin == std::string::npos
                      ? std::string{}
                      : field.substr(begin, end - begin + 1));
  }
  if (!line.empty() && line.back() == ',') out.emplace_back();
  return out;
}

bool parse_double(const std::string& s, double& out) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last && !s.empty();
}

}  // namespace

std::size_t CsvTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < headers.size(); ++i) {
    if (headers[i] == name) return i;
  }
  return npos;
}

void write_csv(std::ostream& os, const CsvTable& table) {
  const std::size_t n = table.rows();
  for (const auto& col : table.columns) {
    if (col.size() != n) {
      throw std::runtime_error("write_csv: ragged columns");
    }
  }
  if (!table.headers.empty()) {
    if (table.headers.size() != table.columns.size()) {
      throw std::runtime_error("write_csv: header/column count mismatch");
    }
    for (std::size_t c = 0; c < table.headers.size(); ++c) {
      os << (c ? "," : "") << table.headers[c];
    }
    os << '\n';
  }
  os.precision(17);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < table.columns.size(); ++c) {
      os << (c ? "," : "") << table.columns[c][r];
    }
    os << '\n';
  }
  if (!os) throw std::runtime_error("write_csv: stream failure");
}

void write_csv(const std::filesystem::path& path, const CsvTable& table) {
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("write_csv: cannot open " + path.string());
  }
  write_csv(file, table);
}

CsvTable read_csv(std::istream& is) {
  CsvTable table;
  std::string line;
  bool first_data_row = true;
  while (std::getline(is, line)) {
    if (line.empty() || line.front() == '#') continue;
    auto fields = split_fields(line);
    if (fields.empty()) continue;
    if (first_data_row) {
      // Decide header vs data: header iff any field fails numeric parse.
      bool all_numeric = true;
      std::vector<double> values(fields.size());
      for (std::size_t i = 0; i < fields.size(); ++i) {
        if (!parse_double(fields[i], values[i])) {
          all_numeric = false;
          break;
        }
      }
      table.columns.resize(fields.size());
      if (all_numeric) {
        for (std::size_t i = 0; i < fields.size(); ++i) {
          table.columns[i].push_back(values[i]);
        }
      } else {
        table.headers = std::move(fields);
      }
      first_data_row = false;
      continue;
    }
    if (fields.size() != table.columns.size()) {
      throw std::runtime_error("read_csv: ragged row");
    }
    for (std::size_t i = 0; i < fields.size(); ++i) {
      double v = 0.0;
      if (!parse_double(fields[i], v)) {
        throw std::runtime_error("read_csv: bad numeric field '" + fields[i] +
                                 "'");
      }
      table.columns[i].push_back(v);
    }
  }
  return table;
}

CsvTable read_csv(const std::filesystem::path& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("read_csv: cannot open " + path.string());
  }
  return read_csv(file);
}

}  // namespace nws

#include "util/fft.hpp"

#include <cassert>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <numbers>
#include <utility>

namespace nws {

namespace {

/// Plan for a power-of-two complex FFT: bit-reversal permutation and the
/// first-half twiddle table w[k] = e^{-2*pi*i*k/n}, k < n/2.
struct Pow2Plan {
  std::size_t n = 0;
  std::vector<std::uint32_t> bitrev;
  std::vector<std::complex<double>> w;
};

/// Bluestein state for one DFT length n: the chirp c[k] = e^{-i*pi*k^2/n}
/// and the conv-size-m forward FFT of the wrapped conjugate chirp.
struct BluesteinPlan {
  std::size_t n = 0;
  std::size_t m = 0;  ///< power-of-two convolution size >= 2n - 1
  std::vector<std::complex<double>> chirp;
  std::vector<std::complex<double>> bfft;
};

/// Size-keyed plan cache shared across calls and threads.  Lookups take a
/// mutex once per transform (not per butterfly); plans are immutable after
/// construction so concurrent users share them freely.
template <typename Plan>
class PlanCache {
 public:
  template <typename Maker>
  std::shared_ptr<const Plan> get(std::size_t n, Maker&& make) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = plans_[n];
    if (!slot) slot = std::make_shared<const Plan>(make(n));
    return slot;
  }

 private:
  std::mutex mu_;
  std::map<std::size_t, std::shared_ptr<const Plan>> plans_;
};

Pow2Plan make_pow2_plan(std::size_t n) {
  assert(is_pow2(n));
  Pow2Plan plan;
  plan.n = n;
  plan.bitrev.resize(n);
  for (std::size_t i = 1; i < n; ++i) {
    plan.bitrev[i] = static_cast<std::uint32_t>(
        (plan.bitrev[i >> 1] >> 1) | ((i & 1) != 0 ? n >> 1 : 0));
  }
  plan.w.resize(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double angle =
        -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n);
    plan.w[k] = {std::cos(angle), std::sin(angle)};
  }
  return plan;
}

PlanCache<Pow2Plan>& pow2_plans() {
  static PlanCache<Pow2Plan> cache;
  return cache;
}

std::shared_ptr<const Pow2Plan> pow2_plan(std::size_t n) {
  return pow2_plans().get(n, make_pow2_plan);
}

void run_fft(std::span<std::complex<double>> a, const Pow2Plan& plan,
             bool inverse) {
  const std::size_t n = a.size();
  assert(plan.n == n);
  if (n < 2) return;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = plan.bitrev[i];
    if (i < j) std::swap(a[i], a[j]);
  }
  // Manual real/imag butterflies: libstdc++'s complex operator* routes
  // through __muldc3 for NaN recovery, which would dominate the loop.
  const double sign = inverse ? -1.0 : 1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len >> 1;
    const std::size_t step = n / len;
    for (std::size_t base = 0; base < n; base += len) {
      for (std::size_t j = 0; j < half; ++j) {
        const std::complex<double> w = plan.w[j * step];
        const double wr = w.real();
        const double wi = sign * w.imag();
        std::complex<double>& x = a[base + j];
        std::complex<double>& y = a[base + j + half];
        const double vr = y.real() * wr - y.imag() * wi;
        const double vi = y.real() * wi + y.imag() * wr;
        y = {x.real() - vr, x.imag() - vi};
        x = {x.real() + vr, x.imag() + vi};
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (std::complex<double>& z : a) z *= scale;
  }
}

BluesteinPlan make_bluestein_plan(std::size_t n) {
  BluesteinPlan plan;
  plan.n = n;
  plan.m = next_pow2(2 * n - 1);
  plan.chirp.resize(n);
  std::vector<std::complex<double>> b(plan.m);
  for (std::size_t k = 0; k < n; ++k) {
    // e^{-i*pi*k^2/n} is periodic in k^2 with period 2n; reducing the
    // exact integer k^2 mod 2n keeps the sin/cos argument small so large
    // k (k^2 up to ~4e9 at week-scale n) loses no phase precision.
    const std::uint64_t r = (static_cast<std::uint64_t>(k) * k) %
                            (2 * static_cast<std::uint64_t>(n));
    const double angle =
        -std::numbers::pi * static_cast<double>(r) / static_cast<double>(n);
    plan.chirp[k] = {std::cos(angle), std::sin(angle)};
    b[k] = std::conj(plan.chirp[k]);
    if (k != 0) b[plan.m - k] = b[k];
  }
  run_fft(b, *pow2_plan(plan.m), /*inverse=*/false);
  plan.bfft = std::move(b);
  return plan;
}

PlanCache<BluesteinPlan>& bluestein_plans() {
  static PlanCache<BluesteinPlan> cache;
  return cache;
}

}  // namespace

std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_pow2(std::span<std::complex<double>> a, bool inverse) {
  const std::size_t n = a.size();
  assert(is_pow2(n));
  if (n < 2) return;
  const auto plan = pow2_plan(n);
  run_fft(a, *plan, inverse);
}

std::vector<std::complex<double>> real_fft(std::span<const double> xs,
                                           std::size_t n) {
  assert(is_pow2(n) && n >= 2 && xs.size() <= n);
  const std::size_t h = n / 2;
  std::vector<std::complex<double>> z(h, {0.0, 0.0});
  for (std::size_t t = 0; t < xs.size(); ++t) {
    if ((t & 1) == 0) {
      z[t / 2] = {xs[t], z[t / 2].imag()};
    } else {
      z[t / 2] = {z[t / 2].real(), xs[t]};
    }
  }
  const auto half_plan = h >= 2 ? pow2_plan(h) : nullptr;
  if (half_plan) run_fft(z, *half_plan, /*inverse=*/false);
  // Unpack: X[k] = E_k + w^k O_k with E/O the even/odd half-spectra; the
  // twiddle e^{-2*pi*i*k/n} is exactly the full-size plan's table.
  const auto full_plan = pow2_plan(n);
  std::vector<std::complex<double>> out(h + 1);
  for (std::size_t k = 0; k <= h; ++k) {
    const std::complex<double> zk = z[k % h];
    const std::complex<double> zmk = std::conj(z[(h - k) % h]);
    const std::complex<double> e = 0.5 * (zk + zmk);
    const std::complex<double> o =
        std::complex<double>(0.0, -0.5) * (zk - zmk);
    if (k == h) {
      out[k] = e - o;  // w^{n/2} = -1
    } else {
      const std::complex<double> w = full_plan->w[k];
      out[k] = {e.real() + w.real() * o.real() - w.imag() * o.imag(),
                e.imag() + w.real() * o.imag() + w.imag() * o.real()};
    }
  }
  return out;
}

std::vector<double> real_ifft(std::span<const std::complex<double>> half,
                              std::size_t n) {
  assert(is_pow2(n) && n >= 2 && half.size() == n / 2 + 1);
  const std::size_t h = n / 2;
  const auto full_plan = pow2_plan(n);
  std::vector<std::complex<double>> z(h);
  for (std::size_t k = 0; k < h; ++k) {
    const std::complex<double> xk = half[k];
    const std::complex<double> xmk = std::conj(half[h - k]);
    const std::complex<double> e = 0.5 * (xk + xmk);
    std::complex<double> wo = 0.5 * (xk - xmk);
    // O_k = w^{-k} * (X[k] - conj(X[h-k])) / 2, with w^{-k} = conj(w[k]).
    const std::complex<double> winv = std::conj(full_plan->w[k]);
    wo = {winv.real() * wo.real() - winv.imag() * wo.imag(),
          winv.real() * wo.imag() + winv.imag() * wo.real()};
    z[k] = {e.real() - wo.imag(), e.imag() + wo.real()};  // E + i*O
  }
  if (h >= 2) run_fft(z, *pow2_plan(h), /*inverse=*/true);
  std::vector<double> out(n);
  for (std::size_t k = 0; k < h; ++k) {
    out[2 * k] = z[k].real();
    out[2 * k + 1] = z[k].imag();
  }
  return out;
}

std::vector<std::complex<double>> dft_real(std::span<const double> xs,
                                           std::size_t count) {
  const std::size_t n = xs.size();
  std::vector<std::complex<double>> out;
  if (n == 0 || count == 0) return out;
  count = std::min(count, n);
  if (n == 1) {
    out.assign(1, {xs[0], 0.0});
    return out;
  }
  if (is_pow2(n)) {
    const auto half = real_fft(xs, n);
    out.resize(count);
    for (std::size_t j = 0; j < count; ++j) {
      out[j] = j <= n / 2 ? half[j] : std::conj(half[n - j]);
    }
    return out;
  }
  const auto plan = bluestein_plans().get(n, make_bluestein_plan);
  std::vector<std::complex<double>> a(plan->m, {0.0, 0.0});
  for (std::size_t t = 0; t < n; ++t) {
    const std::complex<double>& c = plan->chirp[t];
    a[t] = {xs[t] * c.real(), xs[t] * c.imag()};
  }
  run_fft(a, *pow2_plan(plan->m), /*inverse=*/false);
  for (std::size_t k = 0; k < plan->m; ++k) {
    const std::complex<double>& b = plan->bfft[k];
    const double re = a[k].real() * b.real() - a[k].imag() * b.imag();
    const double im = a[k].real() * b.imag() + a[k].imag() * b.real();
    a[k] = {re, im};
  }
  run_fft(a, *pow2_plan(plan->m), /*inverse=*/true);
  out.resize(count);
  for (std::size_t j = 0; j < count; ++j) {
    const std::complex<double>& c = plan->chirp[j];
    out[j] = {a[j].real() * c.real() - a[j].imag() * c.imag(),
              a[j].real() * c.imag() + a[j].imag() * c.real()};
  }
  return out;
}

}  // namespace nws

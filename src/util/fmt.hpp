// Allocation-free numeric formatting for the wire-protocol and journal hot
// paths.
//
// std::ostringstream costs a locale lookup, a heap-backed buffer and a
// virtual sink per use; the service layer formats millions of numbers per
// second, so these helpers append shortest-round-trip std::to_chars output
// directly into a caller-owned std::string (which the caller reuses across
// requests).  The shortest representation parses back bit-exactly
// (to_chars guarantees round-trip), so readers built on from_chars or
// istream extraction both recover the original value.
#pragma once

#include <charconv>
#include <cstdint>
#include <string>

namespace nws {

inline void append_double(std::string& out, double value) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec == std::errc{}) {
    out.append(buf, static_cast<std::size_t>(ptr - buf));
  } else {
    out += "0";  // unreachable for finite doubles with a 32-byte buffer
  }
}

inline void append_unsigned(std::string& out, std::uint64_t value) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec == std::errc{}) {
    out.append(buf, static_cast<std::size_t>(ptr - buf));
  }
}

}  // namespace nws

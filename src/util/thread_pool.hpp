// A small reusable thread pool for the experiment layer.
//
// The paper's fleet experiments simulate six independent hosts (and the
// robustness sweep crosses them with several seeds); every simulation is
// self-contained — own RNG, own workload — so they parallelise trivially.
// The pool is deliberately minimal: a fixed set of workers, a FIFO task
// queue, and wait_idle() as the only synchronisation primitive callers
// need.  Job counts come from the NWSCPU_JOBS environment variable
// (default: hardware_concurrency), and parallel_for() degrades to a plain
// serial loop at 1 job so single-threaded runs have zero threading
// overhead and identical behaviour.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nws {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = default_jobs()).
  explicit ThreadPool(std::size_t threads);
  /// Drains the queue, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  Tasks must not throw; wrap risky work in try/catch
  /// (parallel_for does this for its callers).
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Worker count from NWSCPU_JOBS (>= 1), else hardware_concurrency().
  [[nodiscard]] static std::size_t default_jobs() noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: stop or queue non-empty
  std::condition_variable idle_cv_;  // wait_idle: queue drained, none active
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Runs fn(0) .. fn(n-1) across `jobs` threads (0 = default_jobs(), capped
/// at n).  Indices are claimed dynamically, so uneven task costs balance;
/// results must be written to index-addressed storage by the caller, which
/// makes the output independent of completion order.  With jobs <= 1 the
/// calls happen inline on the calling thread (serial fallback).  The first
/// exception thrown by any index is rethrown after all work finishes.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t jobs = 0);

}  // namespace nws

#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace nws {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::pct(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string TextTable::num(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

void TextTable::print(std::ostream& os) const {
  if (!title_.empty()) os << title_ << '\n';
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "") << row[c]
         << std::string(widths[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    emit_row(rows_[r]);
    if (r == 0 && rows_.size() > 1) {
      std::size_t total = 0;
      for (std::size_t c = 0; c < widths.size(); ++c) {
        total += widths[c] + (c ? 2 : 0);
      }
      os << std::string(total, '-') << '\n';
    }
  }
}

std::string TextTable::to_string() const {
  std::ostringstream ss;
  print(ss);
  return ss.str();
}

}  // namespace nws

#include "util/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>

namespace nws {

std::size_t ThreadPool::default_jobs() noexcept {
  if (const char* env = std::getenv("NWSCPU_JOBS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_jobs();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t jobs) {
  if (n == 0) return;
  if (jobs == 0) jobs = ThreadPool::default_jobs();
  if (jobs > n) jobs = n;
  if (jobs <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::mutex error_mu;
  std::exception_ptr first_error;
  {
    ThreadPool pool(jobs);
    for (std::size_t t = 0; t < jobs; ++t) {
      pool.submit([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          try {
            fn(i);
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (!first_error) first_error = std::current_exception();
          }
        }
      });
    }
    pool.wait_idle();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace nws

// Deterministic fault injection for the NWS pipeline.
//
// A FaultInjector turns a seed and a probability profile into a
// reproducible schedule of faults — connection resets, delayed / truncated
// / garbage responses, disk write failures — that the server's socket loop
// and the persistence journal consult at well-defined *sites*.  Each site
// draws from its own splitmix-derived Rng stream, so the decision sequence
// at one site is independent of how often the others are hit: same seed +
// same per-site call sequence -> same fault schedule.
//
// Production cost: the hooks are a single relaxed atomic pointer load.  No
// injector installed (the default) means fault_check() returns kNone
// without touching an Rng, a mutex, or any per-call state — the hot
// protocol path is unchanged within noise (see DESIGN.md §8 for the
// before/after micro_net numbers).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "util/rng.hpp"

namespace nws {

/// Where a fault can strike.  kServerRead is consulted once per successful
/// recv(), kServerRespond once per response line, kDiskWrite once per
/// journal append, kReplStream once per replication batch a primary is
/// about to send, kReplAck once per replication batch a follower is about
/// to acknowledge.
enum class FaultSite : std::size_t {
  kServerRead = 0,
  kServerRespond = 1,
  kDiskWrite = 2,
  kReplStream = 3,
  kReplAck = 4,
};
inline constexpr std::size_t kFaultSiteCount = 5;

struct FaultAction {
  enum class Kind {
    kNone,      ///< proceed normally
    kReset,     ///< kServerRead/kReplStream: drop the connection mid-flight
    kDelay,     ///< kServerRespond/kReplAck: stall delay_ms before answering
    kTruncate,  ///< kServerRespond: send a partial response, then reset
    kGarbage,   ///< kServerRespond: answer with protocol garbage
    kFail,      ///< kDiskWrite: the write is lost
  };
  Kind kind = Kind::kNone;
  int delay_ms = 0;
};

/// Per-site fault probabilities.  All default to 0 (no faults).
struct FaultProfile {
  double reset_prob = 0.0;      ///< kServerRead -> kReset
  double delay_prob = 0.0;      ///< kServerRespond -> kDelay
  int delay_ms = 50;            ///< stall length for injected delays
  double truncate_prob = 0.0;   ///< kServerRespond -> kTruncate
  double garbage_prob = 0.0;    ///< kServerRespond -> kGarbage
  double disk_fail_prob = 0.0;  ///< kDiskWrite -> kFail
  double repl_drop_prob = 0.0;  ///< kReplStream -> kReset (stream torn down)
  /// kReplAck -> kDelay (follower acks stall by delay_ms).
  double repl_ack_delay_prob = 0.0;
};

class FaultInjector {
 public:
  FaultInjector(std::uint64_t seed, FaultProfile profile);

  /// Draws the next fault decision for `site`.  Thread-safe; the sequence
  /// of decisions at each site is a deterministic function of (seed, site,
  /// call index at that site).
  [[nodiscard]] FaultAction decide(FaultSite site) noexcept;

  [[nodiscard]] const FaultProfile& profile() const noexcept {
    return profile_;
  }
  /// decide() calls at this site so far.
  [[nodiscard]] std::uint64_t calls(FaultSite site) const noexcept;
  /// Non-kNone decisions at this site so far.
  [[nodiscard]] std::uint64_t faults(FaultSite site) const noexcept;
  [[nodiscard]] std::uint64_t total_faults() const noexcept;

 private:
  struct SiteState {
    Rng rng{0};
    std::uint64_t calls = 0;
    std::uint64_t faults = 0;
  };

  FaultProfile profile_;
  mutable std::mutex mutex_;
  std::array<SiteState, kFaultSiteCount> sites_;
};

/// Installs `injector` as the process-global fault source consulted by
/// fault_check().  Pass nullptr to disable injection.  The caller keeps
/// ownership and must uninstall before destroying the injector.
void install_fault_injector(FaultInjector* injector) noexcept;

namespace detail {
extern std::atomic<FaultInjector*> g_fault_injector;
}  // namespace detail

/// The hook the pipeline calls at each fault site.  One relaxed atomic
/// load when no injector is installed.
[[nodiscard]] inline FaultAction fault_check(FaultSite site) noexcept {
  FaultInjector* injector =
      detail::g_fault_injector.load(std::memory_order_relaxed);
  if (injector == nullptr) return {};
  return injector->decide(site);
}

}  // namespace nws

#include "util/backoff.hpp"

#include <algorithm>
#include <cassert>

namespace nws {

ExponentialBackoff::ExponentialBackoff(BackoffConfig config,
                                       std::uint64_t seed)
    : cfg_(config), rng_(seed) {
  assert(cfg_.base_ms > 0.0 && cfg_.cap_ms >= cfg_.base_ms);
  assert(cfg_.multiplier >= 1.0);
  assert(cfg_.jitter >= 0.0 && cfg_.jitter <= 1.0);
  assert(cfg_.spread >= 0.0 && cfg_.spread <= 1.0);
}

double ExponentialBackoff::next_delay_ms() noexcept {
  double d = cfg_.base_ms;
  // Multiply up with saturation at the cap instead of pow(): attempt counts
  // are small and this avoids overflow for pathological attempt numbers.
  for (std::size_t i = 0; i < attempt_ && d < cfg_.cap_ms; ++i) {
    d *= cfg_.multiplier;
  }
  d = std::min(d, cfg_.cap_ms);
  ++attempt_;
  if (cfg_.jitter > 0.0) d *= 1.0 - cfg_.jitter * rng_.uniform();
  if (cfg_.spread > 0.0) {
    d *= 1.0 - cfg_.spread + 2.0 * cfg_.spread * rng_.uniform();
  }
  return d;
}

}  // namespace nws

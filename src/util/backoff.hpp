// Deterministic exponential backoff with jitter, for clients that retry
// against an unreliable service.
//
// The delay sequence is base * multiplier^attempt, capped at cap_ms, with a
// multiplicative jitter drawn from an explicitly seeded Rng so that retry
// storms decorrelate across clients yet every test run replays exactly.
// Policy only: the caller decides what "sleeping" means (a real
// std::this_thread::sleep_for, a simulated clock, or nothing at all).
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/rng.hpp"

namespace nws {

struct BackoffConfig {
  double base_ms = 10.0;    ///< first delay
  double cap_ms = 1000.0;   ///< delays never exceed this
  double multiplier = 2.0;  ///< growth factor per attempt
  /// Fraction of the delay randomised away: the returned delay lies in
  /// [d * (1 - jitter), d].  0 disables jitter entirely.
  double jitter = 0.5;
  /// Symmetric spread around the (possibly jittered) delay: the result is
  /// multiplied by a uniform draw from [1 - spread, 1 + spread], so peers
  /// that share a schedule but not a seed decorrelate in BOTH directions —
  /// a router's pooled connections must not reconnect in lockstep after a
  /// backend restart.  Draws come from the same seeded stream as jitter,
  /// so the sequence stays deterministic per (config, seed).  The spread
  /// may push a delay up to cap_ms * (1 + spread).  0 (the default)
  /// preserves the historical delay sequence bit-for-bit.
  double spread = 0.0;
};

class ExponentialBackoff {
 public:
  explicit ExponentialBackoff(BackoffConfig config = {},
                              std::uint64_t seed = 0);

  /// Delay to wait before the next attempt (milliseconds); advances the
  /// attempt counter.  Deterministic given the seed and call count.
  [[nodiscard]] double next_delay_ms() noexcept;

  /// Back to the first-attempt delay (call after a success).
  void reset() noexcept { attempt_ = 0; }

  [[nodiscard]] std::size_t attempts() const noexcept { return attempt_; }
  [[nodiscard]] const BackoffConfig& config() const noexcept { return cfg_; }

 private:
  BackoffConfig cfg_;
  Rng rng_;
  std::size_t attempt_ = 0;
};

}  // namespace nws

#include "util/fault.hpp"

#include <array>

#include "obs/metrics.hpp"

namespace nws {

namespace detail {
std::atomic<FaultInjector*> g_fault_injector{nullptr};
}  // namespace detail

namespace {

// Per-site fired-fault counters: the chaos harness cross-checks these
// against the injector's own SiteState totals, so a fault that fired but
// never reached the registry (or vice versa) fails the test.
std::array<obs::Counter*, kFaultSiteCount>& fault_fired_counters() {
  static auto* counters = [] {
    auto* c = new std::array<obs::Counter*, kFaultSiteCount>();
    static constexpr std::array<const char*, kFaultSiteCount> kLabels = {
        "server_read", "server_respond", "disk_write", "repl_stream",
        "repl_ack"};
    for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
      (*c)[i] = &obs::registry().counter(
          std::string("nws_fault_fired_total{site=\"") + kLabels[i] + "\"}",
          "Injected faults fired, by site");
    }
    return c;
  }();
  return *counters;
}

}  // namespace

FaultInjector::FaultInjector(std::uint64_t seed, FaultProfile profile)
    : profile_(profile) {
  // One independent stream per site: mix the site index into the seed so
  // site streams never overlap and a site's schedule does not depend on
  // traffic at the others.
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
    sites_[i].rng = Rng(splitmix64(state));
  }
}

FaultAction FaultInjector::decide(FaultSite site) noexcept {
  const std::scoped_lock lock(mutex_);
  SiteState& s = sites_[static_cast<std::size_t>(site)];
  ++s.calls;
  FaultAction action;
  switch (site) {
    case FaultSite::kServerRead:
      if (s.rng.chance(profile_.reset_prob)) {
        action.kind = FaultAction::Kind::kReset;
      }
      break;
    case FaultSite::kServerRespond: {
      // One uniform draw per call keeps the stream consumption fixed no
      // matter which probabilities are set, so enabling one fault kind
      // never perturbs the schedule of another.
      const double u = s.rng.uniform();
      if (u < profile_.delay_prob) {
        action.kind = FaultAction::Kind::kDelay;
        action.delay_ms = profile_.delay_ms;
      } else if (u < profile_.delay_prob + profile_.truncate_prob) {
        action.kind = FaultAction::Kind::kTruncate;
      } else if (u < profile_.delay_prob + profile_.truncate_prob +
                         profile_.garbage_prob) {
        action.kind = FaultAction::Kind::kGarbage;
      }
      break;
    }
    case FaultSite::kDiskWrite:
      if (s.rng.chance(profile_.disk_fail_prob)) {
        action.kind = FaultAction::Kind::kFail;
      }
      break;
    case FaultSite::kReplStream:
      if (s.rng.chance(profile_.repl_drop_prob)) {
        action.kind = FaultAction::Kind::kReset;
      }
      break;
    case FaultSite::kReplAck:
      if (s.rng.chance(profile_.repl_ack_delay_prob)) {
        action.kind = FaultAction::Kind::kDelay;
        action.delay_ms = profile_.delay_ms;
      }
      break;
  }
  if (action.kind != FaultAction::Kind::kNone) {
    ++s.faults;
    fault_fired_counters()[static_cast<std::size_t>(site)]->inc();
  }
  return action;
}

std::uint64_t FaultInjector::calls(FaultSite site) const noexcept {
  const std::scoped_lock lock(mutex_);
  return sites_[static_cast<std::size_t>(site)].calls;
}

std::uint64_t FaultInjector::faults(FaultSite site) const noexcept {
  const std::scoped_lock lock(mutex_);
  return sites_[static_cast<std::size_t>(site)].faults;
}

std::uint64_t FaultInjector::total_faults() const noexcept {
  const std::scoped_lock lock(mutex_);
  std::uint64_t total = 0;
  for (const SiteState& s : sites_) total += s.faults;
  return total;
}

void install_fault_injector(FaultInjector* injector) noexcept {
  detail::g_fault_injector.store(injector, std::memory_order_release);
}

}  // namespace nws

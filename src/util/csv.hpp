// Minimal CSV reading/writing for trace import/export.
//
// nwscpu persists measurement traces (time, value columns) as plain CSV so
// they can be plotted externally and re-loaded for offline analysis.  The
// dialect is deliberately simple: comma separator, optional '#' comment
// lines, a single optional header row, no quoting (our fields are numeric).
#pragma once

#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

namespace nws {

/// An in-memory CSV table: named columns of doubles, all the same length.
struct CsvTable {
  std::vector<std::string> headers;
  std::vector<std::vector<double>> columns;

  [[nodiscard]] std::size_t rows() const noexcept {
    return columns.empty() ? 0 : columns.front().size();
  }
  [[nodiscard]] std::size_t cols() const noexcept { return columns.size(); }

  /// Index of a header, or npos if absent.
  [[nodiscard]] std::size_t column_index(const std::string& name) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Writes a table; throws std::runtime_error on I/O failure or if column
/// lengths are inconsistent.
void write_csv(const std::filesystem::path& path, const CsvTable& table);
void write_csv(std::ostream& os, const CsvTable& table);

/// Reads a table; throws std::runtime_error on I/O failure, ragged rows, or
/// unparsable numeric fields.  A first row containing any non-numeric field
/// is treated as the header.
[[nodiscard]] CsvTable read_csv(const std::filesystem::path& path);
[[nodiscard]] CsvTable read_csv(std::istream& is);

}  // namespace nws

#include "util/distributions.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace nws {

double sample_exponential(Rng& rng, double mean) noexcept {
  assert(mean > 0.0);
  // 1 - uniform() is in (0, 1], so the log argument is never zero.
  return -mean * std::log(1.0 - rng.uniform());
}

double sample_pareto(Rng& rng, double alpha, double xm) noexcept {
  assert(alpha > 0.0 && xm > 0.0);
  const double u = 1.0 - rng.uniform();  // (0, 1]
  return xm * std::pow(u, -1.0 / alpha);
}

double sample_bounded_pareto(Rng& rng, double alpha, double xm,
                             double cap) noexcept {
  assert(alpha > 0.0 && xm > 0.0 && cap > xm);
  // Inverse CDF of the bounded Pareto distribution on [xm, cap].
  const double la = std::pow(xm, alpha);
  const double ha = std::pow(cap, alpha);
  const double u = rng.uniform();
  const double x = -(u * ha - u * la - ha) / (ha * la);
  return std::pow(x, -1.0 / alpha);
}

double sample_normal(Rng& rng) noexcept {
  const double u1 = 1.0 - rng.uniform();  // (0, 1]: keeps log finite
  const double u2 = rng.uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double sample_normal(Rng& rng, double mean, double sigma) noexcept {
  assert(sigma >= 0.0);
  return mean + sigma * sample_normal(rng);
}

double sample_lognormal(Rng& rng, double mu, double sigma) noexcept {
  return std::exp(sample_normal(rng, mu, sigma));
}

double sample_interarrival(Rng& rng, double rate) noexcept {
  assert(rate > 0.0);
  return sample_exponential(rng, 1.0 / rate);
}

}  // namespace nws

// Summary statistics and least-squares regression used throughout nwscpu:
// by the time-series analysis (R/S Hurst regression, variance-time plots),
// the forecaster error bookkeeping, and the experiment tables.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace nws {

/// Arithmetic mean.  Returns 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Population variance (divides by n).  Returns 0 for n < 1.
[[nodiscard]] double variance(std::span<const double> xs) noexcept;

/// Sample variance (divides by n-1).  Returns 0 for n < 2.
[[nodiscard]] double sample_variance(std::span<const double> xs) noexcept;

/// Population standard deviation.
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Median; copies and partially sorts.  Returns 0 for an empty span.
[[nodiscard]] double median(std::span<const double> xs);

/// q-th quantile, q in [0,1], linear interpolation between order statistics.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Mean of |xs[i]|.
[[nodiscard]] double mean_abs(std::span<const double> xs) noexcept;

/// Minimum / maximum.  Both return 0 for an empty span.
[[nodiscard]] double min_value(std::span<const double> xs) noexcept;
[[nodiscard]] double max_value(std::span<const double> xs) noexcept;

/// Incremental mean/variance accumulator (Welford).  Numerically stable and
/// O(1) memory — used by on-line sensors and forecaster error tracking.
class RunningStats {
 public:
  void add(double x) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance.
  [[nodiscard]] double variance() const noexcept {
    return n_ ? m2_ / static_cast<double>(n_) : 0.0;
  }
  /// Sample variance (n-1 denominator).
  [[nodiscard]] double sample_variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Result of an ordinary least-squares fit  y ~ slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0,1]; 0 when undefined.
  double r_squared = 0.0;
};

/// OLS fit.  xs and ys must be the same length; needs >= 2 points with
/// non-degenerate x spread, otherwise returns a zero fit.
[[nodiscard]] LinearFit linear_fit(std::span<const double> xs,
                                   std::span<const double> ys) noexcept;

/// Pearson correlation coefficient; 0 when undefined.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys) noexcept;

}  // namespace nws

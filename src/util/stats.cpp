#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace nws {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double sample_variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept {
  return std::sqrt(variance(xs));
}

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  if (v.size() % 2 == 1) return v[mid];
  const double hi = v[mid];
  const double lo =
      *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

double mean_abs(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += std::abs(x);
  return acc / static_cast<double>(xs.size());
}

double min_value(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

LinearFit linear_fit(std::span<const double> xs,
                     std::span<const double> ys) noexcept {
  assert(xs.size() == ys.size());
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return {};
  const double mx = mean(xs.first(n));
  const double my = mean(ys.first(n));
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return {};
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 0.0;
  return fit;
}

double pearson(std::span<const double> xs,
               std::span<const double> ys) noexcept {
  assert(xs.size() == ys.size());
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  const double mx = mean(xs.first(n));
  const double my = mean(ys.first(n));
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  const double denom = std::sqrt(sxx * syy);
  return denom > 0.0 ? sxy / denom : 0.0;
}

}  // namespace nws

// Deterministic pseudo-random number generation for simulation and tests.
//
// All stochastic components in nwscpu draw from an explicitly seeded Rng so
// that every experiment is exactly reproducible from its seed.  The core
// generator is xoshiro256** (Blackman & Vigna), seeded through splitmix64 so
// that small consecutive seeds produce well-separated streams.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace nws {

/// Splitmix64 step: used for seeding and as a cheap standalone mixer.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** PRNG.  Satisfies UniformRandomBitGenerator so it can be used
/// with <random> distributions, although nwscpu ships its own distribution
/// helpers (see distributions.hpp) for cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator; distinct seeds yield statistically independent
  /// streams (seeded via splitmix64).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 uniformly distributed bits.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n).  n must be > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) noexcept;

  /// Forks an independent child stream; deterministic given this stream's
  /// current state.  Used to give each simulated process its own stream so
  /// adding a workload does not perturb unrelated draws.
  [[nodiscard]] Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace nws

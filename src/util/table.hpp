// Plain-text table rendering for the experiment binaries.
//
// Each bench target reproduces one table or figure of the paper and prints
// it in the paper's row/column layout; TextTable handles alignment so the
// output is directly comparable to the published tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace nws {

/// A simple left-padded text table.  The first added row is rendered as the
/// header with a separator rule beneath it.
class TextTable {
 public:
  explicit TextTable(std::string title = {});

  /// Appends a row of pre-formatted cells.
  void add_row(std::vector<std::string> cells);

  /// Formats a double as a fixed-precision percentage, e.g. "12.3%".
  [[nodiscard]] static std::string pct(double fraction, int decimals = 1);

  /// Formats a double with fixed decimals, e.g. "0.0348".
  [[nodiscard]] static std::string num(double value, int decimals = 4);

  /// Renders with column alignment.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::string title_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nws

// Fast Fourier transforms for the spectral time-series kernels.
//
// An in-house iterative radix-2 Cooley-Tukey kernel with precomputed,
// cached plans (bit-reversal permutation + twiddle table per size; the
// cache is shared across calls and threads, so the fleet fan-out reuses
// one plan per size).  Real-input transforms go through the standard
// half-size complex packing, and arbitrary-length DFTs — needed for the
// periodogram's exact Fourier frequencies 2*pi*j/n at non-power-of-two
// n — use Bluestein's chirp-z algorithm on top of the radix-2 core, with
// the chirp phase reduced mod 2n in exact integer arithmetic so large
// indices lose no precision.
//
// Consumers: Wiener-Khinchin autocorrelation (tsa/autocorrelation),
// the periodogram / GPH Hurst estimator (tsa/periodogram), and the
// Davies-Harte circulant-embedding fGn generator (tsa/fgn).
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace nws {

[[nodiscard]] constexpr bool is_pow2(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n (n >= 1; returns 1 for n <= 1).
[[nodiscard]] std::size_t next_pow2(std::size_t n) noexcept;

/// In-place complex FFT of a power-of-two-sized span.  Forward uses the
/// e^{-2*pi*i*k*t/n} convention; the inverse includes the 1/n factor.
void fft_pow2(std::span<std::complex<double>> a, bool inverse = false);

/// Forward FFT of a real sequence zero-padded to length n (a power of
/// two, n >= 2, xs.size() <= n).  Returns the Hermitian half-spectrum,
/// bins 0..n/2 inclusive; bin k > n/2 is conj(bin n-k).  Computed as one
/// complex FFT of size n/2 via even/odd packing.
[[nodiscard]] std::vector<std::complex<double>> real_fft(
    std::span<const double> xs, std::size_t n);

/// Inverse of real_fft: reconstructs the length-n real sequence from its
/// Hermitian half-spectrum (half.size() == n/2 + 1, n a power of two,
/// n >= 2).  Includes the 1/n normalization.
[[nodiscard]] std::vector<double> real_ifft(
    std::span<const std::complex<double>> half, std::size_t n);

/// First `count` bins (count <= n) of the exact n-point DFT of a real
/// sequence, X[j] = sum_t xs[t] e^{-2*pi*i*j*t/n}, for any n >= 1.
/// Power-of-two n uses real_fft directly; other sizes use Bluestein's
/// chirp-z transform.  O(n log n) either way.
[[nodiscard]] std::vector<std::complex<double>> dft_real(
    std::span<const double> xs, std::size_t count);

}  // namespace nws

#include "sim/process.hpp"

namespace nws::sim {

double bsd_priority(const Process& p) noexcept {
  constexpr double kPUser = 50.0;
  // 4.3BSD uses a weight of 2 per nice unit; the Solaris TS class the
  // paper's hosts ran effectively starves nice-19 work under full-priority
  // contention, which a weight of 3 reproduces: a resident nice-19 process
  // (p_estcpu >= 38 after one decay step, since p' = d*p + nice with
  // d >= 1/2 while anything contends) ranks at >= 50 + 38/4 + 57 = 116.5,
  // below even a p_estcpu-saturated nice-0 competitor at 50 + 255/4 =
  // 113.75.  With weight 2 it would win each second's tail instead.
  return kPUser + p.p_estcpu / 4.0 + 3.0 * static_cast<double>(p.nice);
}

}  // namespace nws::sim

// Host: a simulated time-shared Unix machine.
//
// Ties together the scheduler, kernel time accounting (user/sys/idle tick
// counters — what vmstat reports), the classic smoothed load average (what
// uptime reports), an interrupt-load model (system time consumed by the
// kernel before any user process runs, e.g. network packet servicing on a
// gateway), and the workload drivers that create load.
//
// Sensors read host state without consuming simulated CPU — the paper
// measures vmstat/uptime to be non-intrusive; the hybrid sensor's probe and
// the ground-truth test process DO consume CPU and are injected as real
// simulated processes via start_timed_process().
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"

namespace nws::sim {

class Workload;

/// Cumulative kernel tick counters since boot (the simulated /proc/stat).
struct KernelCounters {
  Tick user = 0;
  Tick sys = 0;
  Tick idle = 0;

  [[nodiscard]] Tick total() const noexcept { return user + sys + idle; }
};

struct HostConfig {
  std::string name = "host";
  /// Probability that a tick is consumed by kernel interrupt servicing
  /// before any process is scheduled (system time not owned by a process).
  double interrupt_load = 0.0;
  /// Seconds between run-queue samples feeding the load average.
  double load_sample_period = 5.0;
  /// Load-average smoothing horizon in seconds (classic 1-minute average).
  double load_horizon = 60.0;
};

/// Handle for a wall-clock-bounded CPU-bound process (probe/test process).
struct TimedRun {
  ProcessId pid = kNoProcess;
  Tick start = 0;
  Tick end = 0;
};

class Host {
 public:
  Host(HostConfig config, std::uint64_t seed);
  ~Host();

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  /// --- time ---------------------------------------------------------------
  [[nodiscard]] Tick now_ticks() const noexcept { return now_; }
  [[nodiscard]] double now() const noexcept { return ticks_to_seconds(now_); }

  /// Advances simulated time by/until the given point.
  void run_for(double seconds);
  void run_until(double seconds);

  /// --- workloads ----------------------------------------------------------
  /// Registers a workload driver; it is advanced every tick.
  void add_workload(std::unique_ptr<Workload> w);

  /// --- processes ----------------------------------------------------------
  /// Spawns a CPU-bound full-speed process that stays runnable until
  /// `wall_seconds` of simulated wall-clock time pass, then exits.  Used for
  /// the NWS probe (1.5 s) and the ground-truth test process (10 s / 5 min).
  [[nodiscard]] TimedRun start_timed_process(const std::string& name,
                                             double wall_seconds,
                                             int nice = 0);

  /// True once the timed process's deadline has passed.
  [[nodiscard]] bool finished(const TimedRun& run) const noexcept {
    return now_ >= run.end;
  }

  /// CPU fraction the timed process obtained: cpu_ticks / wall_ticks — the
  /// simulated getrusage()-based availability observation.  Valid any time
  /// after start (partial if not finished).  The process must not have been
  /// reaped yet.
  [[nodiscard]] double cpu_fraction(const TimedRun& run) const;

  /// Convenience: starts a timed process, advances the simulation to its
  /// deadline and returns the CPU fraction it obtained.
  double run_timed_process(const std::string& name, double wall_seconds,
                           int nice = 0);

  /// Removes exited processes.
  void reap() { sched_.reap(); }

  /// --- kernel state read by sensors ---------------------------------------
  [[nodiscard]] const KernelCounters& counters() const noexcept {
    return counters_;
  }
  /// Smoothed 1-minute load average (uptime's first number).
  [[nodiscard]] double load_average() const noexcept { return load_avg_; }
  /// Instantaneous run-queue length.
  [[nodiscard]] std::size_t runnable_count() const noexcept {
    return sched_.runnable_count();
  }

  [[nodiscard]] const HostConfig& config() const noexcept { return config_; }
  [[nodiscard]] Scheduler& scheduler() noexcept { return sched_; }
  [[nodiscard]] const Scheduler& scheduler() const noexcept { return sched_; }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

 private:
  void step_tick();

  HostConfig config_;
  Rng rng_;
  Scheduler sched_;
  KernelCounters counters_;
  std::vector<std::unique_ptr<Workload>> workloads_;

  Tick now_ = 0;
  double load_avg_ = 0.0;
  Tick load_sample_ticks_;
  double load_decay_;  // exp(-sample_period / horizon)
};

}  // namespace nws::sim

#include "sim/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace nws::sim {

ProcessId Scheduler::spawn(std::string name, int nice,
                           double syscall_fraction, Tick now) {
  assert(nice >= 0 && nice <= 19);
  assert(syscall_fraction >= 0.0 && syscall_fraction <= 1.0);
  Process p;
  p.id = next_id_++;
  p.name = std::move(name);
  p.nice = nice;
  p.syscall_fraction = syscall_fraction;
  p.start_tick = now;
  procs_.push_back(std::move(p));
  return procs_.back().id;
}

std::size_t Scheduler::index_of(ProcessId id) const {
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    if (procs_[i].id == id) return i;
  }
  throw std::out_of_range("Scheduler: unknown process id " +
                          std::to_string(id));
}

bool Scheduler::exists(ProcessId id) const noexcept {
  return std::any_of(procs_.begin(), procs_.end(),
                     [id](const Process& p) { return p.id == id; });
}

const Process& Scheduler::process(ProcessId id) const {
  return procs_[index_of(id)];
}

Process& Scheduler::process(ProcessId id) { return procs_[index_of(id)]; }

void Scheduler::set_runnable(ProcessId id) {
  Process& p = process(id);
  if (p.state != RunState::kExited) p.state = RunState::kRunnable;
}

void Scheduler::set_sleeping(ProcessId id) {
  Process& p = process(id);
  if (p.state != RunState::kExited) p.state = RunState::kSleeping;
}

void Scheduler::exit_process(ProcessId id) {
  process(id).state = RunState::kExited;
}

void Scheduler::reap() {
  std::erase_if(procs_,
                [](const Process& p) { return p.state == RunState::kExited; });
}

void Scheduler::reap_one(ProcessId id) {
  std::erase_if(procs_, [id](const Process& p) {
    return p.id == id && p.state == RunState::kExited;
  });
}

std::size_t Scheduler::runnable_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(procs_.begin(), procs_.end(), [](const Process& p) {
        return p.state == RunState::kRunnable;
      }));
}

std::size_t Scheduler::live_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(procs_.begin(), procs_.end(), [](const Process& p) {
        return p.state != RunState::kExited;
      }));
}

ProcessId Scheduler::pick_next(Tick /*now*/) const {
  const Process* best = nullptr;
  for (const Process& p : procs_) {
    if (p.state != RunState::kRunnable) continue;
    if (best == nullptr) {
      best = &p;
      continue;
    }
    const double pri = bsd_priority(p);
    const double best_pri = bsd_priority(*best);
    // Lower priority value wins; equal priorities round-robin on the least
    // recently granted process.
    if (pri < best_pri ||
        (pri == best_pri && p.last_granted < best->last_granted)) {
      best = &p;
    }
  }
  return best ? best->id : kNoProcess;
}

void Scheduler::charge_tick(ProcessId id, Tick now, bool charge_system) {
  Process& p = process(id);
  assert(p.state == RunState::kRunnable);
  if (charge_system) {
    ++p.sys_ticks;
  } else {
    ++p.user_ticks;
  }
  p.p_estcpu = std::min(p.p_estcpu + 1.0, Process::kMaxEstCpu);
  p.last_granted = now;
}

void Scheduler::expire_deadlines(Tick now) {
  for (Process& p : procs_) {
    if (p.state != RunState::kExited && p.exit_at >= 0 && now >= p.exit_at) {
      p.state = RunState::kExited;
    }
  }
}

void Scheduler::second_boundary(Tick /*now*/, double load_average) {
  const double decay =
      (2.0 * load_average) / (2.0 * load_average + 1.0);
  for (Process& p : procs_) {
    if (p.state == RunState::kExited) continue;
    p.p_estcpu = std::min(p.p_estcpu * decay + static_cast<double>(p.nice),
                          Process::kMaxEstCpu);
  }
}

}  // namespace nws::sim

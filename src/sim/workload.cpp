#include "sim/workload.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numbers>

#include "util/distributions.hpp"

namespace nws::sim {

namespace {

constexpr double kDaySeconds = 86400.0;

}  // namespace

double DiurnalProfile::factor(double t_seconds) const noexcept {
  if (amplitude <= 0.0) return 1.0;
  const double phase =
      2.0 * std::numbers::pi * (t_seconds / kDaySeconds - peak_hour / 24.0);
  return std::max(0.05, 1.0 + amplitude * std::cos(phase));
}

// ---------------------------------------------------------------------------
// InteractiveSession

InteractiveSession::InteractiveSession(InteractiveSessionConfig config,
                                       Rng rng)
    : cfg_(std::move(config)), rng_(rng) {
  assert(cfg_.mean_think > 0.0);
  assert(cfg_.burst_alpha > 0.0);
  assert(cfg_.burst_cap > cfg_.burst_min && cfg_.burst_min > 0.0);
  assert((cfg_.engaged_mean > 0.0) == (cfg_.away_mean > 0.0));
  assert(cfg_.presence_alpha > 1.0);
}

Tick InteractiveSession::presence_duration(Tick /*now*/, double mean) {
  // Heavy-tailed (Pareto) stretch with the requested mean; the cap keeps a
  // single draw from out-living the whole experiment.
  const double target = std::max(30.0, mean);
  const double xm =
      target * (cfg_.presence_alpha - 1.0) / cfg_.presence_alpha;
  const double dur =
      sample_bounded_pareto(rng_, cfg_.presence_alpha, xm, 50.0 * target);
  return std::max<Tick>(1, seconds_to_ticks(dur));
}

void InteractiveSession::advance(Host& host, Tick now) {
  // Presence layer: flip engaged/away on its own (hour-scale) clock.
  // Diurnal modulation: engaged stretches lengthen and away stretches
  // shorten during the busy part of the day.
  if (cfg_.engaged_mean > 0.0 && now >= presence_toggle_) {
    const double factor = cfg_.diurnal.factor(ticks_to_seconds(now));
    if (engaged_) {
      engaged_ = false;
      presence_toggle_ =
          now + presence_duration(now, cfg_.away_mean / factor);
      // Abort any burst in progress: the user walked away.
      if (pid_ != kNoProcess && bursting_) {
        host.scheduler().set_sleeping(pid_);
        bursting_ = false;
      }
      next_event_ = presence_toggle_;
    } else {
      engaged_ = true;
      presence_toggle_ =
          now + presence_duration(now, cfg_.engaged_mean * factor);
      next_event_ = now;  // resume thinking/bursting immediately
    }
  }
  if (now < next_event_) return;
  if (!engaged_) return;  // away: nothing happens until the next toggle
  if (pid_ == kNoProcess) {
    pid_ = host.scheduler().spawn(cfg_.name, /*nice=*/0,
                                  cfg_.syscall_fraction, now);
  }
  if (bursting_) {
    // Burst over: go back to thinking.
    host.scheduler().set_sleeping(pid_);
    bursting_ = false;
    const double factor = cfg_.diurnal.factor(ticks_to_seconds(now));
    const double think =
        sample_exponential(rng_, cfg_.mean_think / factor);
    next_event_ = now + std::max<Tick>(1, seconds_to_ticks(think));
  } else {
    // Think over: start a heavy-tailed CPU burst.
    host.scheduler().set_runnable(pid_);
    bursting_ = true;
    const double burst = sample_bounded_pareto(rng_, cfg_.burst_alpha,
                                               cfg_.burst_min, cfg_.burst_cap);
    next_event_ = now + std::max<Tick>(1, seconds_to_ticks(burst));
  }
}

// ---------------------------------------------------------------------------
// BatchArrivals

BatchArrivals::BatchArrivals(BatchArrivalsConfig config, Rng rng)
    : cfg_(std::move(config)), rng_(rng) {
  assert(cfg_.jobs_per_hour > 0.0);
  assert(cfg_.cpu_duty > 0.0 && cfg_.cpu_duty <= 1.0);
  schedule_next_arrival(0);
}

void BatchArrivals::schedule_next_arrival(Tick now) {
  const double factor = cfg_.diurnal.factor(ticks_to_seconds(now));
  const double rate = cfg_.jobs_per_hour * factor / 3600.0;  // per second
  const double gap = sample_interarrival(rng_, rate);
  next_arrival_ = now + std::max<Tick>(1, seconds_to_ticks(gap));
}

void BatchArrivals::advance(Host& host, Tick now) {
  // Job lifecycle: completion and duty-cycle toggling.
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (now >= it->ends_at) {
      host.scheduler().exit_process(it->pid);
      it = jobs_.erase(it);
      continue;
    }
    if (now >= it->next_toggle) {
      if (it->running) {
        if (cfg_.cpu_duty < 1.0) {
          host.scheduler().set_sleeping(it->pid);
          it->running = false;
          // Off time sized so that on/(on+off) == cpu_duty on average.
          const double off_mean =
              cfg_.run_chunk * (1.0 - cfg_.cpu_duty) / cfg_.cpu_duty;
          const double off = sample_exponential(rng_, off_mean);
          it->next_toggle = now + std::max<Tick>(1, seconds_to_ticks(off));
        } else {
          it->next_toggle = it->ends_at;
        }
      } else {
        host.scheduler().set_runnable(it->pid);
        it->running = true;
        const double on = sample_exponential(rng_, cfg_.run_chunk);
        it->next_toggle = now + std::max<Tick>(1, seconds_to_ticks(on));
      }
    }
    ++it;
  }

  // Poisson arrivals.
  while (now >= next_arrival_) {
    if (jobs_.size() < cfg_.max_concurrent) {
      Job job;
      job.pid = host.scheduler().spawn(
          cfg_.name + "#" + std::to_string(++spawned_), cfg_.nice,
          cfg_.syscall_fraction, now);
      const double dur = std::min(
          sample_lognormal(rng_, cfg_.duration_mu, cfg_.duration_sigma),
          cfg_.duration_cap);
      job.ends_at = now + std::max<Tick>(1, seconds_to_ticks(dur));
      job.running = true;
      host.scheduler().set_runnable(job.pid);
      const double on = sample_exponential(rng_, cfg_.run_chunk);
      job.next_toggle =
          std::min<Tick>(now + std::max<Tick>(1, seconds_to_ticks(on)),
                         job.ends_at);
      jobs_.push_back(job);
    }
    schedule_next_arrival(now);
  }
}

// ---------------------------------------------------------------------------
// PersistentProcess

PersistentProcess::PersistentProcess(PersistentProcessConfig config, Rng rng)
    : cfg_(std::move(config)), rng_(rng) {
  assert(cfg_.duty > 0.0 && cfg_.duty <= 1.0);
  assert(cfg_.run_chunk > 0.0);
}

void PersistentProcess::advance(Host& host, Tick now) {
  if (pid_ == kNoProcess) {
    pid_ = host.scheduler().spawn(cfg_.name, cfg_.nice, cfg_.syscall_fraction,
                                  now);
    host.scheduler().set_runnable(pid_);
    running_ = true;
    if (cfg_.duty >= 1.0) {
      next_toggle_ = std::numeric_limits<Tick>::max();
    } else {
      next_toggle_ =
          now + std::max<Tick>(
                    1, seconds_to_ticks(sample_exponential(rng_, cfg_.run_chunk)));
    }
    return;
  }
  if (now < next_toggle_) return;
  if (running_) {
    host.scheduler().set_sleeping(pid_);
    running_ = false;
    const double off_mean = cfg_.run_chunk * (1.0 - cfg_.duty) / cfg_.duty;
    next_toggle_ =
        now + std::max<Tick>(
                  1, seconds_to_ticks(sample_exponential(rng_, off_mean)));
  } else {
    host.scheduler().set_runnable(pid_);
    running_ = true;
    next_toggle_ =
        now + std::max<Tick>(
                  1, seconds_to_ticks(sample_exponential(rng_, cfg_.run_chunk)));
  }
}

}  // namespace nws::sim

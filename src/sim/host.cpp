#include "sim/host.hpp"

#include <cassert>
#include <cmath>

#include "sim/workload.hpp"

namespace nws::sim {

Host::Host(HostConfig config, std::uint64_t seed)
    : config_(std::move(config)), rng_(seed) {
  assert(config_.interrupt_load >= 0.0 && config_.interrupt_load < 1.0);
  assert(config_.load_sample_period > 0.0 && config_.load_horizon > 0.0);
  load_sample_ticks_ = seconds_to_ticks(config_.load_sample_period);
  load_decay_ = std::exp(-config_.load_sample_period / config_.load_horizon);
}

Host::~Host() = default;

void Host::add_workload(std::unique_ptr<Workload> w) {
  workloads_.push_back(std::move(w));
}

void Host::step_tick() {
  // 1. Let workload drivers toggle process states / spawn jobs.
  for (auto& w : workloads_) w->advance(*this, now_);

  // 2. Expire wall-clock-bounded processes before scheduling so a probe
  //    never receives ticks past its deadline.
  sched_.expire_deadlines(now_);

  // 3. Interrupt servicing steals the tick from everyone (system time that
  //    belongs to no process — the network-gateway effect in the paper).
  if (config_.interrupt_load > 0.0 && rng_.chance(config_.interrupt_load)) {
    ++counters_.sys;
  } else {
    const ProcessId pid = sched_.pick_next(now_);
    if (pid == kNoProcess) {
      ++counters_.idle;
    } else {
      const Process& p = sched_.process(pid);
      const bool system_tick =
          p.syscall_fraction > 0.0 && rng_.chance(p.syscall_fraction);
      sched_.charge_tick(pid, now_, system_tick);
      if (system_tick) {
        ++counters_.sys;
      } else {
        ++counters_.user;
      }
    }
  }

  ++now_;

  // 4. Periodic kernel housekeeping.
  if (now_ % load_sample_ticks_ == 0) {
    const auto n = static_cast<double>(sched_.runnable_count());
    load_avg_ = load_avg_ * load_decay_ + n * (1.0 - load_decay_);
  }
  if (now_ % kHz == 0) {
    sched_.second_boundary(now_, load_avg_);
  }
}

void Host::run_for(double seconds) {
  run_until(now() + seconds);
}

void Host::run_until(double seconds) {
  const Tick target = seconds_to_ticks(seconds);
  while (now_ < target) step_tick();
  // A deadline landing exactly on `target` must take effect before the
  // caller inspects process state (step_tick only expires at tick start).
  sched_.expire_deadlines(now_);
}

TimedRun Host::start_timed_process(const std::string& name,
                                   double wall_seconds, int nice) {
  TimedRun run;
  run.pid = sched_.spawn(name, nice, /*syscall_fraction=*/0.0, now_);
  run.start = now_;
  run.end = now_ + seconds_to_ticks(wall_seconds);
  sched_.process(run.pid).exit_at = run.end;
  sched_.set_runnable(run.pid);
  return run;
}

double Host::cpu_fraction(const TimedRun& run) const {
  const Tick elapsed = std::min(now_, run.end) - run.start;
  if (elapsed <= 0) return 0.0;
  const Process& p = sched_.process(run.pid);
  return static_cast<double>(p.cpu_ticks()) / static_cast<double>(elapsed);
}

double Host::run_timed_process(const std::string& name, double wall_seconds,
                               int nice) {
  const TimedRun run = start_timed_process(name, wall_seconds, nice);
  run_until(ticks_to_seconds(run.end));
  const double fraction = cpu_fraction(run);
  // Reap only this process: other exited processes may not have been
  // inspected by their owners yet (e.g. a test process that finished while
  // this probe was advancing simulated time).
  sched_.reap_one(run.pid);
  return fraction;
}

}  // namespace nws::sim

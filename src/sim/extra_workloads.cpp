#include "sim/extra_workloads.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace nws::sim {

// ---------------------------------------------------------------------------
// PeriodicDaemon

PeriodicDaemon::PeriodicDaemon(PeriodicDaemonConfig config)
    : cfg_(std::move(config)) {
  assert(cfg_.period > 0.0 && cfg_.burst > 0.0 && cfg_.burst < cfg_.period);
  next_event_ = seconds_to_ticks(cfg_.phase);
}

void PeriodicDaemon::advance(Host& host, Tick now) {
  if (now < next_event_) return;
  if (pid_ == kNoProcess) {
    pid_ = host.scheduler().spawn(cfg_.name, cfg_.nice, cfg_.syscall_fraction,
                                  now);
  }
  if (running_) {
    host.scheduler().set_sleeping(pid_);
    running_ = false;
    next_event_ += seconds_to_ticks(cfg_.period - cfg_.burst);
  } else {
    host.scheduler().set_runnable(pid_);
    running_ = true;
    next_event_ += seconds_to_ticks(cfg_.burst);
  }
}

// ---------------------------------------------------------------------------
// TraceReplay

namespace {

/// Duty window over which the fractional competitor is PWM'd.
constexpr Tick kDutyWindowTicks = 1 * kHz;

}  // namespace

TraceReplay::TraceReplay(TimeSeries trace, Rng rng)
    : trace_(std::move(trace)), rng_(rng) {
  assert(!trace_.empty());
}

void TraceReplay::apply_target(Host& host, Tick now) {
  const double a =
      std::clamp(trace_[sample_ % trace_.size()], 0.05, 1.0);
  // a = 1 / (x + 1)  =>  x competitors (continuous).
  const double x = 1.0 / a - 1.0;
  const auto whole = static_cast<std::size_t>(x);
  duty_ = x - static_cast<double>(whole);

  const std::size_t needed = whole + (duty_ > 0.0 ? 1 : 0);
  while (pids_.size() < needed) {
    const ProcessId pid = host.scheduler().spawn(
        "replay#" + std::to_string(pids_.size()), 0, 0.0, now);
    pids_.push_back(pid);
  }
  for (std::size_t i = 0; i < pids_.size(); ++i) {
    if (i < whole) {
      host.scheduler().set_runnable(pids_[i]);
    } else {
      host.scheduler().set_sleeping(pids_[i]);
    }
  }
  active_ = whole;
  fractional_on_ = false;
  next_duty_toggle_ = now;  // re-evaluate the fractional slot immediately
}

void TraceReplay::advance(Host& host, Tick now) {
  if (now >= next_sample_) {
    apply_target(host, now);
    ++sample_;
    next_sample_ = now + seconds_to_ticks(trace_.period());
  }
  if (duty_ > 0.0 && now >= next_duty_toggle_) {
    const ProcessId frac = pids_[active_];
    if (fractional_on_) {
      host.scheduler().set_sleeping(frac);
      fractional_on_ = false;
      next_duty_toggle_ =
          now + std::max<Tick>(1, static_cast<Tick>(
                                      (1.0 - duty_) *
                                      static_cast<double>(kDutyWindowTicks)));
    } else {
      host.scheduler().set_runnable(frac);
      fractional_on_ = true;
      next_duty_toggle_ =
          now + std::max<Tick>(1, static_cast<Tick>(
                                      duty_ *
                                      static_cast<double>(kDutyWindowTicks)));
    }
  }
}

}  // namespace nws::sim

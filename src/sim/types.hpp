// Basic simulation types and time conversion.
//
// The simulator is tick-driven at HZ ticks per simulated second (HZ = 100,
// the classic Unix clock).  A tick is the schedulable quantum: on each tick
// exactly one of {a user process, the kernel (interrupt), idle} consumes
// the CPU, mirroring how statclock-based Unix accounting attributes time.
#pragma once

#include <cstdint>

namespace nws::sim {

using Tick = std::int64_t;
using ProcessId = std::uint32_t;

inline constexpr ProcessId kNoProcess = 0;  ///< invalid/absent process id
inline constexpr int kHz = 100;             ///< ticks per simulated second

[[nodiscard]] constexpr double ticks_to_seconds(Tick t) noexcept {
  return static_cast<double>(t) / kHz;
}

[[nodiscard]] constexpr Tick seconds_to_ticks(double s) noexcept {
  return static_cast<Tick>(s * kHz + 0.5);
}

}  // namespace nws::sim

// Additional workload drivers beyond the core three (workload.hpp):
//
//  * PeriodicDaemon — a cron-style job that wakes on a fixed period and
//    burns a short CPU burst (log rotation, mail queue runs, monitoring
//    agents).  Adds the weak periodicities real departmental hosts show.
//  * TraceReplay — drives a host's runnable/sleeping state so that its
//    *availability* tracks a recorded trace: in each sample period the
//    driver keeps enough load on the run queue that a full-priority
//    process would obtain approximately the trace value.  This lets any
//    recorded availability trace (e.g. from the live /proc monitor, or a
//    published archive) be replayed through the full sensor/forecast
//    pipeline.
#pragma once

#include <vector>

#include "sim/workload.hpp"
#include "tsa/series.hpp"

namespace nws::sim {

struct PeriodicDaemonConfig {
  std::string name = "cron";
  double period = 300.0;        ///< seconds between wake-ups
  double burst = 1.0;           ///< CPU-bound seconds per wake-up
  double phase = 0.0;           ///< offset of the first wake-up
  int nice = 0;
  double syscall_fraction = 0.3;  ///< daemons are syscall-heavy
};

class PeriodicDaemon final : public Workload {
 public:
  explicit PeriodicDaemon(PeriodicDaemonConfig config);
  void advance(Host& host, Tick now) override;

 private:
  PeriodicDaemonConfig cfg_;
  ProcessId pid_ = kNoProcess;
  bool running_ = false;
  Tick next_event_ = 0;
};

/// Replays an availability trace.  For each sample with availability a in
/// (0, 1], the driver keeps ceil(1/a) - 1 CPU-bound competitor processes
/// runnable, with a duty cycle that interpolates fractional competitor
/// counts — so a newly created full-priority process sharing round-robin
/// with k competitors obtains ~1/(k+1) ~ a of the CPU.
class TraceReplay final : public Workload {
 public:
  /// `trace` values are clamped to [0.05, 1.0]; the series period defines
  /// how long each target level is held.  Replay loops when it reaches the
  /// end of the trace.
  TraceReplay(TimeSeries trace, Rng rng);
  void advance(Host& host, Tick now) override;

  /// Competitors currently runnable (for tests).
  [[nodiscard]] std::size_t active_competitors() const noexcept {
    return active_;
  }

 private:
  void apply_target(Host& host, Tick now);

  TimeSeries trace_;
  Rng rng_;
  std::vector<ProcessId> pids_;
  std::size_t active_ = 0;
  std::size_t sample_ = 0;
  Tick next_sample_ = 0;
  Tick next_duty_toggle_ = 0;
  // Fractional competitor handling: `fractional_pid_` is runnable for
  // duty_ of each duty window.
  double duty_ = 0.0;
  bool fractional_on_ = false;
};

}  // namespace nws::sim

// 4.3BSD-style decay-usage time-sharing scheduler.
//
// This is the mechanism behind every phenomenon the paper reports:
//
//  * the CPU fraction a full-priority process obtains against resident load
//    (what the test process measures);
//  * `nice 19` background processes losing the CPU entirely to full-priority
//    work while still inflating the run queue (the conundrum anomaly);
//  * a freshly started short probe pre-empting a long-running process whose
//    p_estcpu has saturated — priority decay (the kongo anomaly).
//
// Model (per 4.3BSD, Leffler et al.):
//   priority  = PUSER + p_estcpu/4 + 2*nice           (lower runs first)
//   per running tick:  p_estcpu += 1   (bounded)
//   once per second:   p_estcpu = p_estcpu * (2*load)/(2*load + 1) + nice
// Ties are broken round-robin (least recently granted first).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/process.hpp"
#include "sim/types.hpp"

namespace nws::sim {

class Scheduler {
 public:
  Scheduler() = default;

  /// Creates a process (initially sleeping).  Never reuses ids.
  ProcessId spawn(std::string name, int nice, double syscall_fraction = 0.0,
                  Tick now = 0);

  void set_runnable(ProcessId id);
  void set_sleeping(ProcessId id);
  /// Marks the process exited; it stops being scheduled but its accounting
  /// remains queryable until reap() is called.
  void exit_process(ProcessId id);
  /// Frees the slots of exited processes.
  void reap();
  /// Frees one process's slot (must be exited); no-op for unknown ids.
  void reap_one(ProcessId id);

  [[nodiscard]] bool exists(ProcessId id) const noexcept;
  [[nodiscard]] const Process& process(ProcessId id) const;
  [[nodiscard]] Process& process(ProcessId id);

  /// Number of runnable processes (the instantaneous run-queue length).
  [[nodiscard]] std::size_t runnable_count() const noexcept;
  /// Number of live (runnable or sleeping) processes.
  [[nodiscard]] std::size_t live_count() const noexcept;

  /// Picks the runnable process to receive the tick at `now`, or kNoProcess
  /// when the run queue is empty.  Does not charge the tick.
  [[nodiscard]] ProcessId pick_next(Tick now) const;

  /// Charges one tick to `id` (updates p_estcpu, accounting, round-robin
  /// bookkeeping).  `charge_system` selects system vs user accounting.
  void charge_tick(ProcessId id, Tick now, bool charge_system);

  /// The once-per-second digestion: decays every live process's p_estcpu
  /// using the current load average, and exits processes whose wall-clock
  /// deadline has passed.
  void second_boundary(Tick now, double load_average);

  /// Exits any process whose exit_at deadline has been reached.  Called
  /// every tick so probe durations are honoured exactly.
  void expire_deadlines(Tick now);

  /// Access for iteration (tests, reports).
  [[nodiscard]] const std::vector<Process>& processes() const noexcept {
    return procs_;
  }

 private:
  [[nodiscard]] std::size_t index_of(ProcessId id) const;

  std::vector<Process> procs_;
  ProcessId next_id_ = 1;
};

}  // namespace nws::sim

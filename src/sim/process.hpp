// Simulated Unix process.
//
// A process is a passive record scheduled by nws::sim::Scheduler: it has a
// nice value, the BSD decay-usage estimator p_estcpu, cumulative user and
// system tick counts, and a run state toggled by workload drivers (or by a
// wall-clock exit deadline for probe/test processes).
#pragma once

#include <string>

#include "sim/types.hpp"

namespace nws::sim {

enum class RunState {
  kRunnable,  ///< on the run queue (counted by load average)
  kSleeping,  ///< blocked; consumes no CPU, not on the run queue
  kExited,    ///< finished; slot retained until reaped
};

struct Process {
  ProcessId id = kNoProcess;
  std::string name;
  /// Unix nice value in [0, 19]; higher = lower priority.  (Negative nice
  /// requires privilege and never occurs in the paper's setting.)
  int nice = 0;
  RunState state = RunState::kSleeping;

  /// BSD decay-usage CPU estimator; grows by 1 per tick while running and
  /// decays once per second (see Scheduler).  Bounded by kMaxEstCpu.
  double p_estcpu = 0.0;

  /// Fraction of this process's CPU ticks charged as system time (syscall
  /// intensity); 0 for a pure spinning probe.
  double syscall_fraction = 0.0;

  /// Cumulative accounting (the simulated getrusage()).
  Tick user_ticks = 0;
  Tick sys_ticks = 0;

  /// Tick at which the process was created.
  Tick start_tick = 0;
  /// If >= 0, the scheduler exits the process once now >= exit_at
  /// (wall-clock-bounded probe and test processes).
  Tick exit_at = -1;

  /// Round-robin tie-break bookkeeping: tick of the last grant.
  Tick last_granted = -1;

  static constexpr double kMaxEstCpu = 255.0;

  [[nodiscard]] Tick cpu_ticks() const noexcept {
    return user_ticks + sys_ticks;
  }
};

/// The 4.3BSD user-priority formula: pri = PUSER + p_estcpu/4 + 2*nice.
/// Lower numeric priority runs first.
[[nodiscard]] double bsd_priority(const Process& p) noexcept;

}  // namespace nws::sim

// Workload drivers: the synthetic stand-in for 1998 UCSD production load.
//
// Three generators cover the paper's host classes (see DESIGN.md §5):
//
//  * InteractiveSession — a user alternating heavy-tailed CPU bursts
//    (bounded Pareto, the classic ON/OFF source of aggregate self-similarity
//    per Willinger et al.) with exponential think times, modulated by a
//    diurnal intensity profile.  Workstations (thing1/thing2).
//  * BatchArrivals — Poisson-arriving compute jobs with heavy-tailed
//    durations and a configurable CPU duty cycle (jobs interleave I/O
//    sleeps).  Departmental servers (beowulf/gremlin).
//  * PersistentProcess — an immortal CPU-bound process at a given nice
//    value: nice 19 models the conundrum background soaker; nice 0 models
//    kongo's long-running full-priority job.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/host.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"

namespace nws::sim {

class Workload {
 public:
  virtual ~Workload() = default;
  /// Called once per tick before scheduling; must be cheap when idle.
  virtual void advance(Host& host, Tick now) = 0;
};

/// Sinusoidal day/night activity modulation.  factor() multiplies the
/// *activity rate*: > 1 during the busy part of the day.
struct DiurnalProfile {
  double amplitude = 0.0;   ///< 0 disables modulation; must be in [0, 1)
  double peak_hour = 15.0;  ///< local hour of peak activity

  [[nodiscard]] double factor(double t_seconds) const noexcept;
};

struct InteractiveSessionConfig {
  std::string name = "user";
  /// Mean think (OFF) time in seconds at diurnal factor 1.
  double mean_think = 30.0;
  /// Pareto shape for burst (ON) durations; <= 2 is heavy-tailed.
  double burst_alpha = 1.4;
  /// Minimum burst seconds.
  double burst_min = 0.4;
  /// Burst cap in seconds (bounded Pareto).
  double burst_cap = 600.0;
  /// Fraction of the session's CPU ticks charged as system time.
  double syscall_fraction = 0.08;
  /// Presence layer: users are *engaged* at the machine for heavy-tailed
  /// stretches and then *away* (meetings, lunch, home) for heavy-tailed
  /// stretches during which no bursts occur.  This hour-scale ON/OFF is
  /// what gives real availability traces their long-range autocorrelation
  /// (the paper's Figure 2).  engaged_mean = 0 disables the layer (always
  /// engaged).  Durations are Pareto with shape `presence_alpha`.
  double engaged_mean = 0.0;  ///< mean engaged stretch, seconds
  double away_mean = 0.0;     ///< mean away stretch, seconds
  double presence_alpha = 1.5;
  DiurnalProfile diurnal;
};

class InteractiveSession final : public Workload {
 public:
  InteractiveSession(InteractiveSessionConfig config, Rng rng);
  void advance(Host& host, Tick now) override;

  [[nodiscard]] bool engaged() const noexcept { return engaged_; }

 private:
  [[nodiscard]] Tick presence_duration(Tick now, double mean);

  InteractiveSessionConfig cfg_;
  Rng rng_;
  ProcessId pid_ = kNoProcess;
  bool bursting_ = false;
  Tick next_event_ = 0;
  bool engaged_ = true;
  Tick presence_toggle_ = 0;  ///< next engaged/away flip (if layer enabled)
};

struct BatchArrivalsConfig {
  std::string name = "batch";
  /// Mean job arrivals per hour at diurnal factor 1.
  double jobs_per_hour = 4.0;
  /// Lognormal parameters of job duration (seconds of wall time).
  double duration_mu = 5.0;     ///< exp(5) ~ 148 s median
  double duration_sigma = 1.0;
  /// Cap on a single job's wall-clock duration.
  double duration_cap = 4.0 * 3600.0;
  /// Fraction of a job's lifetime spent runnable (rest sleeps on I/O).
  double cpu_duty = 0.85;
  /// Mean length of one runnable stretch in seconds.
  double run_chunk = 2.0;
  /// Jobs run at this nice value.
  int nice = 0;
  double syscall_fraction = 0.15;
  /// Upper bound on concurrently active jobs (admission control).
  std::size_t max_concurrent = 6;
  DiurnalProfile diurnal;
};

class BatchArrivals final : public Workload {
 public:
  BatchArrivals(BatchArrivalsConfig config, Rng rng);
  void advance(Host& host, Tick now) override;

  [[nodiscard]] std::size_t active_jobs() const noexcept {
    return jobs_.size();
  }

 private:
  struct Job {
    ProcessId pid = kNoProcess;
    Tick ends_at = 0;
    Tick next_toggle = 0;
    bool running = false;
  };

  void schedule_next_arrival(Tick now);

  BatchArrivalsConfig cfg_;
  Rng rng_;
  std::vector<Job> jobs_;
  Tick next_arrival_ = 0;
  std::uint64_t spawned_ = 0;
};

struct PersistentProcessConfig {
  std::string name = "hog";
  int nice = 0;
  double syscall_fraction = 0.0;
  /// If < 1, the process briefly sleeps so it occupies only this fraction
  /// of the CPU it could get (a partially I/O-bound resident job).
  double duty = 1.0;
  /// Mean runnable stretch in seconds when duty < 1.
  double run_chunk = 5.0;
};

class PersistentProcess final : public Workload {
 public:
  PersistentProcess(PersistentProcessConfig config, Rng rng);
  void advance(Host& host, Tick now) override;

  [[nodiscard]] ProcessId pid() const noexcept { return pid_; }

 private:
  PersistentProcessConfig cfg_;
  Rng rng_;
  ProcessId pid_ = kNoProcess;
  bool running_ = false;
  Tick next_toggle_ = 0;
};

}  // namespace nws::sim
